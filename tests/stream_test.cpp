#include <gtest/gtest.h>

#include <map>

#include "storage/erasure_file.h"
#include "storage/stream.h"
#include "test_util.h"

namespace carousel::storage {
namespace {

using codes::Byte;
using codes::Carousel;
using test::random_bytes;

/// Collects emitted stripes into a map keyed by (stripe, block).
struct Collector {
  std::map<std::pair<std::size_t, std::size_t>, std::vector<Byte>> blocks;
  StripeSink sink() {
    return [this](std::size_t stripe,
                  std::span<const std::span<const Byte>> bs) {
      for (std::size_t i = 0; i < bs.size(); ++i)
        blocks[{stripe, i}] = {bs[i].begin(), bs[i].end()};
    };
  }
};

TEST(StreamingEncoder, MatchesErasureFileByteForByte) {
  Carousel code(12, 6, 10, 10);
  const std::size_t block = code.s() * 16;
  auto file = random_bytes(6 * block * 3 + 211, 31);  // ragged 4th stripe
  Collector got;
  StreamingEncoder enc(code, block, got.sink());
  // Feed in awkward chunk sizes.
  std::size_t off = 0;
  for (std::size_t chunk : {1u, 7u, 100u, 4096u}) {
    enc.write(std::span<const Byte>(file.data() + off,
                                    std::min(chunk, file.size() - off)));
    off += std::min(chunk, file.size() - off);
  }
  enc.write(std::span<const Byte>(file.data() + off, file.size() - off));
  EXPECT_EQ(enc.finish(), 4u);
  EXPECT_EQ(enc.bytes_consumed(), file.size());

  ErasureFile ef(code, file, block);
  ASSERT_EQ(ef.stripes(), 4u);
  for (std::size_t s = 0; s < 4; ++s)
    for (std::size_t i = 0; i < code.n(); ++i) {
      auto ref = ef.block(s, i);
      ASSERT_EQ(got.blocks.at({s, i}),
                std::vector<Byte>(ref.begin(), ref.end()))
          << "stripe " << s << " block " << i;
    }
}

TEST(StreamingEncoder, EmptyInputEmitsOnePaddedStripe) {
  Carousel code(4, 2, 2, 4);
  Collector got;
  StreamingEncoder enc(code, code.s() * 4, got.sink());
  EXPECT_EQ(enc.finish(), 1u);
  EXPECT_EQ(got.blocks.size(), 4u);
  EXPECT_THROW(enc.write(std::vector<Byte>(1)), std::logic_error);
  EXPECT_EQ(enc.finish(), 1u);  // idempotent
}

TEST(StreamingEncoder, ExactMultipleEmitsNoPaddingStripe) {
  Carousel code(6, 3, 4, 6);
  const std::size_t block = code.s() * 8;
  Collector got;
  StreamingEncoder enc(code, block, got.sink());
  auto file = random_bytes(3 * block * 2, 5);  // exactly two stripes
  enc.write(file);
  EXPECT_EQ(enc.finish(), 2u);
}

TEST(StreamingEncoder, Validation) {
  Carousel code(6, 3, 4, 6);
  Collector got;
  EXPECT_THROW(StreamingEncoder(code, 0, got.sink()), std::invalid_argument);
  EXPECT_THROW(StreamingEncoder(code, code.s() * 4 + 1, got.sink()),
               std::invalid_argument);
  EXPECT_THROW(StreamingEncoder(code, code.s(), nullptr),
               std::invalid_argument);
}

TEST(StreamingDecoder, RoundTripInChunks) {
  Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 16;
  auto file = random_bytes(6 * block * 2 + 99, 33);
  Collector stored;
  StreamingEncoder enc(code, block, stored.sink());
  enc.write(file);
  enc.finish();

  StreamingDecoder dec(code, block,
                       [&stored](std::size_t s, std::size_t i) {
                         auto it = stored.blocks.find({s, i});
                         return it == stored.blocks.end()
                                    ? std::vector<Byte>()
                                    : it->second;
                       });
  std::vector<Byte> out;
  dec.read(file.size(), [&out](std::span<const Byte> chunk) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  });
  EXPECT_EQ(out, file);
}

TEST(StreamingDecoder, SurvivesMissingBlocks) {
  Carousel code(12, 6, 10, 10);
  const std::size_t block = code.s() * 8;
  auto file = random_bytes(6 * block, 35);
  Collector stored;
  StreamingEncoder enc(code, block, stored.sink());
  enc.write(file);
  enc.finish();
  // Knock out three data-carriers and one parity block.
  for (std::size_t i : {1u, 4u, 8u, 11u}) stored.blocks.erase({0, i});

  StreamingDecoder dec(code, block,
                       [&stored](std::size_t s, std::size_t i) {
                         auto it = stored.blocks.find({s, i});
                         return it == stored.blocks.end()
                                    ? std::vector<Byte>()
                                    : it->second;
                       });
  std::vector<Byte> out;
  dec.read(file.size(), [&out](std::span<const Byte> chunk) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  });
  EXPECT_EQ(out, file);
}

TEST(StreamingDecoder, UnrecoverableThrows) {
  Carousel code(6, 3, 4, 6);
  const std::size_t block = code.s() * 4;
  auto file = random_bytes(3 * block, 37);
  Collector stored;
  StreamingEncoder enc(code, block, stored.sink());
  enc.write(file);
  enc.finish();
  for (std::size_t i : {0u, 1u, 2u, 3u}) stored.blocks.erase({0, i});
  StreamingDecoder dec(code, block,
                       [&stored](std::size_t s, std::size_t i) {
                         auto it = stored.blocks.find({s, i});
                         return it == stored.blocks.end()
                                    ? std::vector<Byte>()
                                    : it->second;
                       });
  EXPECT_THROW(dec.read(file.size(), [](std::span<const Byte>) {}),
               std::runtime_error);
}

}  // namespace
}  // namespace carousel::storage
