// Cross-backend equivalence tests for the GF(2^8) region kernels: the AVX2
// shuffle and GFNI affine kernels must agree with the scalar full-table
// backend bit-for-bit on every coefficient, size and alignment.

#include <gtest/gtest.h>

#include "gf/backend.h"
#include "gf/vect.h"
#include "test_util.h"

namespace carousel::gf {
namespace {

TEST(Backend, BestIsSupportedAndSettable) {
  Backend best = best_backend();
  EXPECT_TRUE(set_backend(best));
  EXPECT_EQ(active_backend(), best);
  EXPECT_TRUE(set_backend(Backend::kScalar));
  EXPECT_EQ(active_backend(), Backend::kScalar);
  set_backend(best);
}

TEST(Backend, NamesAreStable) {
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
  EXPECT_STREQ(backend_name(Backend::kGfni), "gfni");
}

TEST(Backend, ScopedBackendRestores) {
  Backend before = active_backend();
  {
    ScopedBackend guard(Backend::kScalar);
    EXPECT_TRUE(guard.ok());
    EXPECT_EQ(active_backend(), Backend::kScalar);
  }
  EXPECT_EQ(active_backend(), before);
}

class BackendEquivalence : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (!set_backend(GetParam()))
      GTEST_SKIP() << "backend " << backend_name(GetParam())
                   << " not supported on this CPU";
  }
  void TearDown() override { set_backend(best_backend()); }
};

TEST_P(BackendEquivalence, MulRegionAllCoefficients) {
  auto src = test::random_bytes(1 << 12);
  std::vector<Byte> dst(src.size());
  for (unsigned c = 0; c < 256; ++c) {
    mul_region(static_cast<Byte>(c), src.data(), dst.data(), src.size());
    for (std::size_t i = 0; i < src.size(); i += 97)
      ASSERT_EQ(dst[i], mul(static_cast<Byte>(c), src[i]))
          << "c=" << c << " i=" << i;
  }
}

TEST_P(BackendEquivalence, MulAddRegionAllCoefficients) {
  auto src = test::random_bytes(2048, 1);
  for (unsigned c = 0; c < 256; c += 3) {
    auto dst = test::random_bytes(2048, 2);
    auto expect = dst;
    for (std::size_t i = 0; i < src.size(); ++i)
      expect[i] ^= mul(static_cast<Byte>(c), src[i]);
    mul_add_region(static_cast<Byte>(c), src.data(), dst.data(), src.size());
    ASSERT_EQ(dst, expect) << "c=" << c;
  }
}

TEST_P(BackendEquivalence, TailSizesAroundVectorWidth) {
  // Exercise every remainder around the 32-byte vector width.
  for (std::size_t n = 0; n <= 100; ++n) {
    auto src = test::random_bytes(n, static_cast<std::uint32_t>(n) + 1);
    std::vector<Byte> dst(n, 0);
    mul_region(0xA7, src.data(), dst.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(dst[i], mul(0xA7, src[i])) << "n=" << n << " i=" << i;
  }
}

TEST_P(BackendEquivalence, UnalignedPointers) {
  // Every src offset mod the 32-byte vector width (dst offset de-correlated
  // via *7 mod 32), so each possible vmovdqu misalignment is hit — the SIMD
  // kernels promise memcpy-clean unaligned access for arbitrary Byte*
  // regions, and UBSan's alignment check rides on this test.
  auto buf = test::random_bytes(4096 + 64, 7);
  for (std::size_t off = 0; off < 32; ++off) {
    std::vector<Byte> dst(4096 + 64, 0);
    mul_region(0x53, buf.data() + off, dst.data() + ((off * 7) % 32), 4000);
    for (std::size_t i = 0; i < 4000; i += 131)
      ASSERT_EQ(dst[(off * 7) % 32 + i], mul(0x53, buf[off + i]))
          << "off=" << off;
  }
}

TEST_P(BackendEquivalence, XorRegion) {
  for (std::size_t n : {31u, 32u, 33u, 1000u}) {
    auto src = test::random_bytes(n, 5);
    auto dst = test::random_bytes(n, 6);
    auto expect = dst;
    for (std::size_t i = 0; i < n; ++i) expect[i] ^= src[i];
    xor_region(src.data(), dst.data(), n);
    ASSERT_EQ(dst, expect) << "n=" << n;
  }
}

TEST_P(BackendEquivalence, DotProdMatchesScalarBackend) {
  const std::size_t n = 777;
  std::vector<std::vector<Byte>> bufs;
  std::vector<const Byte*> ptrs;
  std::vector<Byte> coeffs;
  for (std::size_t i = 0; i < 6; ++i) {
    bufs.push_back(test::random_bytes(n, static_cast<std::uint32_t>(i) + 10));
    ptrs.push_back(bufs.back().data());
    coeffs.push_back(static_cast<Byte>(41 * i + 1));
  }
  std::vector<Byte> got(n);
  dot_prod_region(coeffs, ptrs, got.data(), n);
  std::vector<Byte> want(n);
  {
    ScopedBackend scalar(Backend::kScalar);
    dot_prod_region(coeffs, ptrs, want.data(), n);
  }
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendEquivalence,
                         ::testing::Values(Backend::kScalar, Backend::kAvx2,
                                           Backend::kGfni),
                         [](const auto& info) {
                           return backend_name(info.param);
                         });

// Exhaustive 256x256 product check on whatever backend is fastest — pins the
// GFNI affine-matrix packing (and the shuffle tables) to the field tables.
TEST(BackendExhaustive, FullMultiplicationTableOnBestBackend) {
  set_backend(best_backend());
  std::vector<Byte> src(256);
  for (unsigned i = 0; i < 256; ++i) src[i] = static_cast<Byte>(i);
  std::vector<Byte> dst(256);
  for (unsigned c = 0; c < 256; ++c) {
    mul_region(static_cast<Byte>(c), src.data(), dst.data(), 256);
    for (unsigned b = 0; b < 256; ++b)
      ASSERT_EQ(dst[b], mul(static_cast<Byte>(c), static_cast<Byte>(b)))
          << "c=" << c << " b=" << b;
  }
}

}  // namespace
}  // namespace carousel::gf
