#include <gtest/gtest.h>

#include <numeric>

#include "gf/gf256.h"
#include "gf/vect.h"
#include "test_util.h"

namespace carousel::gf {
namespace {

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(sub(0x53, 0xCA), add(0x53, 0xCA));
  for (unsigned a = 0; a < 256; ++a) EXPECT_EQ(add(Byte(a), Byte(a)), 0);
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(Byte(a), 1), a);
    EXPECT_EQ(mul(1, Byte(a)), a);
    EXPECT_EQ(mul(Byte(a), 0), 0);
    EXPECT_EQ(mul(0, Byte(a)), 0);
  }
}

TEST(Gf256, KnownProducts) {
  // Spot values for polynomial 0x11D (match ISA-L / jerasure GF(2^8)).
  EXPECT_EQ(mul(2, 2), 4);
  EXPECT_EQ(mul(0x80, 2), 0x1D);  // x^8 = x^4+x^3+x^2+1
  EXPECT_EQ(mul(0xFF, 0xFF), 0xE2);
}

// Independent reference: shift-and-add ("peasant") multiplication straight
// from the field definition, sharing no code with the table implementation.
Byte peasant_mul(Byte a, Byte b) {
  unsigned r = 0, x = a;
  for (int i = 0; i < 8; ++i)
    if (b & (1u << i)) r ^= x << i;
  for (int i = 15; i >= 8; --i)
    if (r & (1u << i)) r ^= kPrimitivePoly << (i - 8);
  return static_cast<Byte>(r);
}

TEST(Gf256, TableMatchesPeasantMultiplicationExhaustively) {
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b)
      ASSERT_EQ(mul(Byte(a), Byte(b)), peasant_mul(Byte(a), Byte(b)))
          << a << "*" << b;
}

TEST(Gf256, MulCommutative) {
  for (unsigned a = 0; a < 256; a += 7)
    for (unsigned b = 0; b < 256; ++b)
      EXPECT_EQ(mul(Byte(a), Byte(b)), mul(Byte(b), Byte(a)));
}

TEST(Gf256, MulAssociativeSampled) {
  for (unsigned a = 1; a < 256; a += 11)
    for (unsigned b = 1; b < 256; b += 13)
      for (unsigned c = 1; c < 256; c += 17)
        EXPECT_EQ(mul(mul(Byte(a), Byte(b)), Byte(c)),
                  mul(Byte(a), mul(Byte(b), Byte(c))));
}

TEST(Gf256, DistributiveSampled) {
  for (unsigned a = 0; a < 256; a += 5)
    for (unsigned b = 0; b < 256; b += 9)
      for (unsigned c = 0; c < 256; c += 11)
        EXPECT_EQ(mul(Byte(a), add(Byte(b), Byte(c))),
                  add(mul(Byte(a), Byte(b)), mul(Byte(a), Byte(c))));
}

TEST(Gf256, InverseRoundTrip) {
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(mul(Byte(a), inv(Byte(a))), 1) << "a=" << a;
    EXPECT_EQ(div(Byte(a), Byte(a)), 1);
  }
  EXPECT_EQ(inv(0), 0);  // sentinel convention
}

TEST(Gf256, DivIsMulByInverse) {
  for (unsigned a = 0; a < 256; a += 3)
    for (unsigned b = 1; b < 256; b += 5)
      EXPECT_EQ(mul(div(Byte(a), Byte(b)), Byte(b)), a);
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (unsigned a = 0; a < 256; a += 6) {
    Byte acc = 1;
    for (unsigned e = 0; e < 300; ++e) {
      EXPECT_EQ(pow(Byte(a), e), e == 0 ? Byte(1) : acc)
          << "a=" << a << " e=" << e;
      if (e == 0)
        acc = Byte(a);
      else
        acc = mul(acc, Byte(a));
    }
  }
}

TEST(Gf256, LogExpRoundTrip) {
  for (unsigned a = 1; a < 256; ++a) EXPECT_EQ(exp(log(Byte(a))), a);
  for (unsigned i = 0; i < 255; ++i) EXPECT_EQ(log(exp(i)), i);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // exp enumerates all 255 nonzero elements exactly once.
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    Byte v = exp(i);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "repeat at i=" << i;
    seen[v] = true;
  }
}

TEST(Vect, MulRowMatchesScalar) {
  for (unsigned c = 0; c < 256; c += 4) {
    const Byte* row = mul_row(Byte(c));
    for (unsigned b = 0; b < 256; ++b)
      EXPECT_EQ(row[b], mul(Byte(c), Byte(b)));
  }
}

TEST(Vect, MulRegionMatchesScalar) {
  auto src = test::random_bytes(1000);
  std::vector<Byte> dst(src.size());
  for (Byte c : {Byte(0), Byte(1), Byte(2), Byte(0x8E), Byte(0xFF)}) {
    mul_region(c, src.data(), dst.data(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i)
      ASSERT_EQ(dst[i], mul(c, src[i])) << "c=" << int(c) << " i=" << i;
  }
}

TEST(Vect, MulRegionInPlace) {
  auto src = test::random_bytes(257);
  auto expect = src;
  for (auto& b : expect) b = mul(0x35, b);
  mul_region(0x35, src.data(), src.data(), src.size());
  EXPECT_EQ(src, expect);
}

TEST(Vect, MulAddRegionAccumulates) {
  auto src = test::random_bytes(513, 1);
  auto dst = test::random_bytes(513, 2);
  auto expect = dst;
  for (std::size_t i = 0; i < src.size(); ++i)
    expect[i] ^= mul(0x1B, src[i]);
  mul_add_region(0x1B, src.data(), dst.data(), src.size());
  EXPECT_EQ(dst, expect);
}

TEST(Vect, MulAddRegionZeroCoeffIsNoop) {
  auto src = test::random_bytes(64, 1);
  auto dst = test::random_bytes(64, 2);
  auto expect = dst;
  mul_add_region(0, src.data(), dst.data(), src.size());
  EXPECT_EQ(dst, expect);
}

TEST(Vect, XorRegionOddSizes) {
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    auto src = test::random_bytes(n, 3);
    auto dst = test::random_bytes(n, 4);
    auto expect = dst;
    for (std::size_t i = 0; i < n; ++i) expect[i] ^= src[i];
    xor_region(src.data(), dst.data(), n);
    EXPECT_EQ(dst, expect) << "n=" << n;
  }
}

TEST(Vect, DotProdMatchesManualSum) {
  const std::size_t n = 300;
  auto a = test::random_bytes(n, 1);
  auto b = test::random_bytes(n, 2);
  auto c = test::random_bytes(n, 3);
  std::vector<Byte> coeffs = {0x02, 0x00, 0x9D};
  std::vector<const Byte*> srcs = {a.data(), b.data(), c.data()};
  std::vector<Byte> dst(n, 0xAA);  // must be overwritten, not accumulated
  dot_prod_region(coeffs, srcs, dst.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(dst[i], Byte(mul(0x02, a[i]) ^ mul(0x9D, c[i])));
}

}  // namespace
}  // namespace carousel::gf
