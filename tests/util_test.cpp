#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>

#include "util/thread_pool.h"

namespace carousel::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndicesOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(257, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&] { ++count; });
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  pool.parallel_for(8, [&](std::size_t) {
    int now = ++inside;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --inside;
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++count; });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace carousel::util
