// Engine-level tests for the generator-matrix codec shared by all codes:
// unit-level decode, best-effort decode from extra blocks (the paper's
// §VIII-B future-work extension), direct projection repair, and the
// systematic fast paths.

#include <gtest/gtest.h>

#include <numeric>

#include "codes/carousel.h"
#include "codes/rs.h"
#include "matrix/echelon.h"
#include "test_util.h"

namespace carousel::codes {
namespace {

using test::random_bytes;
using test::split_const_spans;
using test::split_spans;

TEST(EchelonBasis, RankAccounting) {
  matrix::EchelonBasis b(3);
  EXPECT_EQ(b.size(), 0u);
  std::vector<Byte> r1 = {1, 2, 3}, r2 = {2, 4, 6}, r3 = {0, 1, 0},
                    r4 = {5, 5, 5};
  EXPECT_TRUE(b.try_insert(r1));
  EXPECT_FALSE(b.try_insert(r2));  // scalar multiple
  EXPECT_TRUE(b.contains(r2));
  EXPECT_TRUE(b.try_insert(r3));
  EXPECT_FALSE(b.full());
  EXPECT_TRUE(b.try_insert(r4));
  EXPECT_TRUE(b.full());
  std::vector<Byte> any = {9, 8, 7};
  EXPECT_FALSE(b.try_insert(any));
  EXPECT_TRUE(b.contains(any));
}

TEST(EchelonBasis, RejectsZeroRow) {
  matrix::EchelonBasis b(4);
  std::vector<Byte> zero(4, 0);
  EXPECT_FALSE(b.try_insert(zero));
  EXPECT_TRUE(b.contains(zero));
}

TEST(LinearCode, RejectsMalformedGenerator) {
  CodeParams p{4, 2, 2, 2};
  EXPECT_THROW(LinearCode(p, 1, matrix::Matrix(3, 2)), std::invalid_argument);
  EXPECT_THROW(LinearCode(p, 2, matrix::Matrix(8, 5)), std::invalid_argument);
  EXPECT_NO_THROW(LinearCode(p, 2, matrix::Matrix(8, 4)));
}

TEST(LinearCode, UnitIsSystematicReportsMessageIndex) {
  ReedSolomon rs(5, 3);
  std::size_t msg = 99;
  EXPECT_TRUE(rs.unit_is_systematic(1, 0, &msg));
  EXPECT_EQ(msg, 1u);
  EXPECT_FALSE(rs.unit_is_systematic(4, 0, &msg));
  Carousel c(6, 3, 4, 6);
  for (std::size_t t = 0; t < c.data_units_per_block(); ++t) {
    EXPECT_TRUE(c.unit_is_systematic(2, t, &msg));
    EXPECT_EQ(msg, 2 * c.data_units_per_block() + t);
  }
}

TEST(LinearCode, DecodeUnitsRejectsBadShapes) {
  ReedSolomon rs(4, 2);
  auto data = random_bytes(2 * 16);
  std::vector<Byte> blob(4 * 16);
  rs.encode(data, split_spans(blob, 4));
  std::vector<Byte> out(2 * 16);
  std::vector<UnitRef> too_few = {{0, 0, blob.data()}};
  EXPECT_THROW(rs.decode_units(too_few, 16, out), std::invalid_argument);
  std::vector<UnitRef> bad_ref = {{0, 0, blob.data()}, {9, 0, blob.data()}};
  EXPECT_THROW(rs.decode_units(bad_ref, 16, out), std::invalid_argument);
  std::vector<UnitRef> dup = {{1, 0, blob.data() + 16},
                              {1, 0, blob.data() + 16}};
  EXPECT_THROW(rs.decode_units(dup, 16, out), std::runtime_error);
}

TEST(LinearCode, DecodeFromAvailableAllSystematic) {
  Carousel c(12, 6, 10, 12);
  const std::size_t ub = 8, w = c.s() * ub;
  auto data = random_bytes(c.k() * w);
  std::vector<Byte> blob(c.n() * w);
  c.encode(data, split_spans(blob, c.n()));
  auto views = split_const_spans(blob, c.n());
  std::vector<std::size_t> ids(c.n());
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<Byte> out(data.size());
  auto stats = c.decode_from_available(ids, views, out);
  EXPECT_EQ(out, data);
  // With every data unit present, only the file-sized systematic units are
  // consumed — zero parity units, zero arithmetic.
  EXPECT_EQ(stats.bytes_read, data.size());
}

TEST(LinearCode, DecodeFromAvailableUsesMinimalParity) {
  Carousel c(12, 6, 10, 10);
  const std::size_t ub = 8, w = c.s() * ub;
  auto data = random_bytes(c.k() * w);
  std::vector<Byte> blob(c.n() * w);
  c.encode(data, split_spans(blob, c.n()));
  auto views = split_const_spans(blob, c.n());
  // Lose data-carrying block 2; give the decoder everything else.
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < c.n(); ++i)
    if (i != 2) ids.push_back(i);
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t id : ids) chosen.push_back(views[id]);
  std::vector<Byte> out(data.size());
  auto stats = c.decode_from_available(ids, chosen, out);
  EXPECT_EQ(out, data);
  // Reads: all present data units + exactly K parity units for the lost slot.
  const std::size_t K = c.data_units_per_block();
  EXPECT_EQ(stats.bytes_read, (c.p() - 1) * K * ub + K * ub);
}

TEST(LinearCode, DecodeFromAvailableEverySingleLossEveryCode) {
  for (auto [n, k, d, p] :
       {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{
            6, 3, 3, 6},
        {6, 3, 4, 5},
        {8, 4, 6, 8},
        {12, 6, 10, 10}}) {
    Carousel c(n, k, d, p);
    const std::size_t ub = 4, w = c.s() * ub;
    auto data = random_bytes(c.k() * w);
    std::vector<Byte> blob(c.n() * w);
    c.encode(data, split_spans(blob, c.n()));
    auto views = split_const_spans(blob, c.n());
    for (std::size_t lost = 0; lost < n; ++lost) {
      std::vector<std::size_t> ids;
      std::vector<std::span<const Byte>> chosen;
      for (std::size_t i = 0; i < n; ++i) {
        if (i == lost) continue;
        ids.push_back(i);
        chosen.push_back(views[i]);
      }
      std::vector<Byte> out(data.size());
      c.decode_from_available(ids, chosen, out);
      ASSERT_EQ(out, data) << c.params().to_string() << " lost=" << lost;
    }
  }
}

TEST(LinearCode, DecodeFromAvailableMultiLossDownToK) {
  Carousel c(12, 6, 10, 12);
  const std::size_t ub = 4, w = c.s() * ub;
  auto data = random_bytes(c.k() * w);
  std::vector<Byte> blob(c.n() * w);
  c.encode(data, split_spans(blob, c.n()));
  auto views = split_const_spans(blob, c.n());
  // Progressively remove blocks until only k remain; decode at every step.
  std::vector<std::size_t> alive(c.n());
  std::iota(alive.begin(), alive.end(), 0);
  while (alive.size() >= c.k()) {
    std::vector<std::span<const Byte>> chosen;
    for (std::size_t id : alive) chosen.push_back(views[id]);
    std::vector<Byte> out(data.size());
    ASSERT_NO_THROW(c.decode_from_available(alive, chosen, out))
        << alive.size() << " blocks alive";
    ASSERT_EQ(out, data);
    alive.erase(alive.begin());  // kill the lowest-numbered survivor
  }
}

TEST(LinearCode, DecodeFromAvailableComputesLessWithMoreBlocks) {
  // The future-work claim: with q > k blocks, fewer bytes must be computed.
  Carousel c(12, 6, 10, 12);
  const std::size_t ub = 4, w = c.s() * ub;
  auto data = random_bytes(c.k() * w);
  std::vector<Byte> blob(c.n() * w);
  c.encode(data, split_spans(blob, c.n()));
  auto views = split_const_spans(blob, c.n());
  auto parity_units_used = [&](std::size_t q) {
    std::vector<std::size_t> ids(q);
    std::iota(ids.begin(), ids.end(), 0);
    std::vector<std::span<const Byte>> chosen;
    for (std::size_t id : ids) chosen.push_back(views[id]);
    std::vector<Byte> out(data.size());
    auto stats = c.decode_from_available(ids, chosen, out);
    EXPECT_EQ(out, data);
    // bytes beyond the systematic units present = parity consumed.
    const std::size_t K = c.data_units_per_block();
    return stats.bytes_read - std::min(q, c.p()) * K * ub;
  };
  std::size_t prev = parity_units_used(6);
  EXPECT_GT(prev, 0u);
  for (std::size_t q : {8u, 10u, 12u}) {
    std::size_t cur = parity_units_used(q);
    EXPECT_LT(cur, prev) << "q=" << q;
    prev = cur;
  }
  EXPECT_EQ(prev, 0u);  // all p data blocks present: pure copy
}

TEST(LinearCode, DecodeFromAvailableShapeErrors) {
  Carousel c(6, 3, 4, 6);
  const std::size_t ub = 4, w = c.s() * ub;
  auto data = random_bytes(c.k() * w);
  std::vector<Byte> blob(c.n() * w);
  c.encode(data, split_spans(blob, c.n()));
  auto views = split_const_spans(blob, c.n());
  std::vector<Byte> out(data.size());
  {
    std::vector<std::size_t> ids = {0, 1};  // fewer than k
    std::vector<std::span<const Byte>> chosen = {views[0], views[1]};
    EXPECT_THROW(c.decode_from_available(ids, chosen, out),
                 std::invalid_argument);
  }
  {
    std::vector<std::size_t> ids = {0, 1, 1};  // duplicate
    std::vector<std::span<const Byte>> chosen = {views[0], views[1], views[1]};
    EXPECT_THROW(c.decode_from_available(ids, chosen, out),
                 std::invalid_argument);
  }
}

TEST(LinearCode, ProjectUnitsMatchesEncodeForEveryTarget) {
  Carousel c(8, 4, 6, 8);
  const std::size_t ub = 4, w = c.s() * ub;
  auto data = random_bytes(c.k() * w);
  std::vector<Byte> blob(c.n() * w);
  c.encode(data, split_spans(blob, c.n()));
  auto views = split_const_spans(blob, c.n());
  for (std::size_t target = 0; target < c.n(); ++target) {
    std::vector<UnitRef> sources;
    for (std::size_t b = 0; b < c.k(); ++b) {
      std::size_t id = (target + 1 + b) % c.n();
      for (std::size_t t = 0; t < c.s(); ++t)
        sources.push_back({id, t, views[id].data() + t * ub});
    }
    std::vector<Byte> rebuilt(w);
    c.project_units(sources, ub, target, rebuilt);
    EXPECT_TRUE(
        std::equal(rebuilt.begin(), rebuilt.end(), views[target].begin()))
        << "target=" << target;
  }
}

TEST(LinearCode, ProjectUnitsRejectsSelfSource) {
  ReedSolomon rs(4, 2);
  auto data = random_bytes(2 * 8);
  std::vector<Byte> blob(4 * 8);
  rs.encode(data, split_spans(blob, 4));
  std::vector<UnitRef> sources = {{0, 0, blob.data()},
                                  {1, 0, blob.data() + 8}};
  std::vector<Byte> out(8);
  EXPECT_THROW(rs.project_units(sources, 8, 0, out), std::invalid_argument);
  EXPECT_THROW(rs.project_units(sources, 8, 7, out), std::invalid_argument);
}

}  // namespace
}  // namespace carousel::codes
