#include <gtest/gtest.h>

#include "sim/flow.h"
#include "sim/simulation.h"

namespace carousel::sim {
namespace {

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(2.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(3.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulation, TiesFireInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, HandlersCanScheduleMore) {
  Simulation sim;
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    if (fired < 10) sim.after(1.0, tick);
  };
  sim.after(1.0, tick);
  EXPECT_DOUBLE_EQ(sim.run(), 10.0);
  EXPECT_EQ(fired, 10);
}

TEST(Simulation, RejectsPastEvents) {
  Simulation sim;
  sim.at(5.0, [&] {
    EXPECT_THROW(sim.at(1.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(FlowNetwork, SingleFlowBottleneckedByNarrowestResource) {
  Simulation sim;
  FlowNetwork net(sim);
  auto wide = net.add_resource(100.0, "wide");
  auto narrow = net.add_resource(10.0, "narrow");
  Time done = -1;
  net.start_flow(50.0, {wide, narrow}, [&](Time t) { done = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 5.0);  // 50 bytes at 10 B/s
}

TEST(FlowNetwork, TwoFlowsShareFairly) {
  Simulation sim;
  FlowNetwork net(sim);
  auto link = net.add_resource(10.0, "link");
  std::vector<Time> done;
  net.start_flow(50.0, {link}, [&](Time t) { done.push_back(t); });
  net.start_flow(50.0, {link}, [&](Time t) { done.push_back(t); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Both progress at 5 B/s and finish together.
  EXPECT_NEAR(done[0], 10.0, 1e-6);
  EXPECT_NEAR(done[1], 10.0, 1e-6);
}

TEST(FlowNetwork, ShortFlowFreesCapacityForLongFlow) {
  Simulation sim;
  FlowNetwork net(sim);
  auto link = net.add_resource(10.0, "link");
  Time short_done = -1, long_done = -1;
  net.start_flow(10.0, {link}, [&](Time t) { short_done = t; });
  net.start_flow(90.0, {link}, [&](Time t) { long_done = t; });
  sim.run();
  // Share 5 B/s until the short flow ends at t=2 (10 bytes), then the long
  // flow has 80 bytes left at 10 B/s: 2 + 8 = 10.
  EXPECT_NEAR(short_done, 2.0, 1e-6);
  EXPECT_NEAR(long_done, 10.0, 1e-6);
}

TEST(FlowNetwork, MaxMinUnevenPaths) {
  Simulation sim;
  FlowNetwork net(sim);
  auto a = net.add_resource(10.0, "a");
  auto b = net.add_resource(4.0, "b");
  // Flow 1 crosses a only; flow 2 crosses a and b.
  auto f1 = net.start_flow(1000.0, {a}, nullptr);
  auto f2 = net.start_flow(1000.0, {a, b}, nullptr);
  // Water-filling: f2 pinned to 4 by b, f1 gets the residual 6 on a.
  EXPECT_NEAR(net.flow_rate(f2), 4.0, 1e-9);
  EXPECT_NEAR(net.flow_rate(f1), 6.0, 1e-9);
  sim.run();
}

TEST(FlowNetwork, LateArrivalSlowsExistingFlow) {
  Simulation sim;
  FlowNetwork net(sim);
  auto link = net.add_resource(10.0, "link");
  Time first_done = -1;
  net.start_flow(100.0, {link}, [&](Time t) { first_done = t; });
  sim.at(5.0, [&] { net.start_flow(200.0, {link}, nullptr); });
  sim.run();
  // 50 bytes in the first 5 s, then 5 B/s: 5 + 10 = 15.
  EXPECT_NEAR(first_done, 15.0, 1e-6);
}

TEST(FlowNetwork, ZeroByteFlowCompletesImmediately) {
  Simulation sim;
  FlowNetwork net(sim);
  auto link = net.add_resource(10.0, "link");
  Time done = -1;
  net.start_flow(0.0, {link}, [&](Time t) { done = t; });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST(FlowNetwork, CompletionCallbackCanChainFlows) {
  Simulation sim;
  FlowNetwork net(sim);
  auto link = net.add_resource(10.0, "link");
  Time second_done = -1;
  net.start_flow(20.0, {link}, [&](Time) {
    net.start_flow(30.0, {link}, [&](Time t) { second_done = t; });
  });
  sim.run();
  EXPECT_NEAR(second_done, 5.0, 1e-6);  // 2 s + 3 s, sequential
}

TEST(FlowNetwork, ValidatesInputs) {
  Simulation sim;
  FlowNetwork net(sim);
  EXPECT_THROW(net.add_resource(0.0, "bad"), std::invalid_argument);
  auto link = net.add_resource(1.0, "ok");
  EXPECT_THROW(net.start_flow(1.0, {}, nullptr), std::invalid_argument);
  EXPECT_THROW(net.start_flow(1.0, {link + 7}, nullptr),
               std::invalid_argument);
}

TEST(FlowNetwork, ManyParallelFlowsAggregateCorrectly) {
  // 10 server links of 3 each into one client link of 25: aggregate pinned
  // at 25, finishing 10 * 30 bytes takes 300/25 = 12 s... but each server
  // link caps its flow at 3, total 30 > 25, so the client is the bottleneck.
  Simulation sim;
  FlowNetwork net(sim);
  auto client = net.add_resource(25.0, "client");
  std::vector<Time> done(10, -1);
  for (int i = 0; i < 10; ++i) {
    auto server = net.add_resource(3.0, "s" + std::to_string(i));
    net.start_flow(30.0, {server, client},
                   [&done, i](Time t) { done[i] = t; });
  }
  sim.run();
  for (Time t : done) EXPECT_NEAR(t, 12.0, 1e-6);
}

}  // namespace
}  // namespace carousel::sim
