#include <gtest/gtest.h>

#include "codes/rs.h"
#include "test_util.h"

namespace carousel::codes {
namespace {

using test::random_bytes;
using test::split_const_spans;
using test::split_spans;
using test::subsets;

TEST(ReedSolomon, SystematicPrefixIsVerbatim) {
  ReedSolomon rs(6, 4);
  auto data = random_bytes(4 * 100);
  std::vector<Byte> blob(6 * 100);
  auto blocks = split_spans(blob, 6);
  rs.encode(data, blocks);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_TRUE(std::equal(blocks[i].begin(), blocks[i].end(),
                           data.begin() + i * 100));
}

TEST(ReedSolomon, DecodeFromEveryKSubset) {
  const std::size_t n = 6, k = 4, w = 64;
  ReedSolomon rs(n, k);
  auto data = random_bytes(k * w);
  std::vector<Byte> blob(n * w);
  auto blocks = split_spans(blob, n);
  rs.encode(data, blocks);
  auto views = split_const_spans(blob, n);
  for (const auto& ids : subsets(n, k)) {
    std::vector<std::span<const Byte>> chosen;
    for (std::size_t id : ids) chosen.push_back(views[id]);
    std::vector<Byte> out(k * w);
    auto stats = rs.decode(ids, chosen, out);
    EXPECT_EQ(out, data);
    EXPECT_EQ(stats.bytes_read, k * w);
    EXPECT_EQ(stats.sources, k);
  }
}

TEST(ReedSolomon, ParityDiffersFromData) {
  ReedSolomon rs(5, 3);
  auto data = random_bytes(3 * 32);
  std::vector<Byte> blob(5 * 32);
  auto blocks = split_spans(blob, 5);
  rs.encode(data, blocks);
  // A parity block should not equal any data block for random input.
  for (std::size_t pb = 3; pb < 5; ++pb)
    for (std::size_t db = 0; db < 3; ++db)
      EXPECT_FALSE(std::equal(blocks[pb].begin(), blocks[pb].end(),
                              blocks[db].begin()));
}

TEST(ReedSolomon, ReconstructEveryBlockFromEveryHelperSet) {
  const std::size_t n = 6, k = 3, w = 48;
  ReedSolomon rs(n, k);
  auto data = random_bytes(k * w);
  std::vector<Byte> blob(n * w);
  rs.encode(data, split_spans(blob, n));
  auto views = split_const_spans(blob, n);
  for (std::size_t failed = 0; failed < n; ++failed) {
    for (const auto& ids : subsets(n, k)) {
      if (std::find(ids.begin(), ids.end(), failed) != ids.end()) continue;
      std::vector<std::span<const Byte>> chosen;
      for (std::size_t id : ids) chosen.push_back(views[id]);
      std::vector<Byte> rebuilt(w);
      auto stats = rs.reconstruct(failed, ids, chosen, rebuilt);
      EXPECT_TRUE(std::equal(rebuilt.begin(), rebuilt.end(),
                             views[failed].begin()))
          << "failed=" << failed;
      // RS repair traffic: k whole blocks (the cost Carousel/MSR beat).
      EXPECT_EQ(stats.bytes_read, k * w);
    }
  }
}

TEST(ReedSolomon, ReconstructRejectsSelfHelper) {
  ReedSolomon rs(4, 2);
  auto data = random_bytes(2 * 16);
  std::vector<Byte> blob(4 * 16);
  rs.encode(data, split_spans(blob, 4));
  auto views = split_const_spans(blob, 4);
  std::vector<std::size_t> ids = {1, 2};
  std::vector<std::span<const Byte>> chosen = {views[1], views[2]};
  std::vector<Byte> out(16);
  EXPECT_THROW(rs.reconstruct(1, ids, chosen, out), std::invalid_argument);
}

TEST(ReedSolomon, DecodeShapeErrors) {
  ReedSolomon rs(4, 2);
  auto data = random_bytes(2 * 16);
  std::vector<Byte> blob(4 * 16);
  rs.encode(data, split_spans(blob, 4));
  auto views = split_const_spans(blob, 4);
  std::vector<Byte> out(2 * 16);
  {
    std::vector<std::size_t> ids = {0};
    std::vector<std::span<const Byte>> chosen = {views[0]};
    EXPECT_THROW(rs.decode(ids, chosen, out), std::invalid_argument);
  }
  {
    std::vector<std::size_t> ids = {0, 0};  // repeated block: singular
    std::vector<std::span<const Byte>> chosen = {views[0], views[0]};
    EXPECT_THROW(rs.decode(ids, chosen, out), std::runtime_error);
  }
}

TEST(ReedSolomon, EncodeShapeErrors) {
  ReedSolomon rs(4, 2);
  auto data = random_bytes(2 * 16);
  std::vector<Byte> blob(3 * 16);
  auto blocks = split_spans(blob, 3);  // one block short
  EXPECT_THROW(rs.encode(data, blocks), std::invalid_argument);
}

TEST(ReedSolomon, ParamsExposeRsShape) {
  ReedSolomon rs(9, 6);
  EXPECT_EQ(rs.params().d, 6u);
  EXPECT_EQ(rs.params().p, 6u);
  EXPECT_EQ(rs.s(), 1u);
  EXPECT_TRUE(rs.params().trivial_repair());
  EXPECT_DOUBLE_EQ(rs.params().repair_traffic_blocks(), 6.0);
}

// Parameterised MDS sweep across realistic deployment shapes (the paper
// cites (6,4), (9,6), (12,6) among deployed RS configurations).
class RsMdsSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RsMdsSweep, RandomStripesRoundTrip) {
  auto [n, k] = GetParam();
  const std::size_t w = 40;
  ReedSolomon rs(n, k);
  auto data = random_bytes(k * w, n * 1000 + k);
  std::vector<Byte> blob(n * w);
  rs.encode(data, split_spans(blob, n));
  auto views = split_const_spans(blob, n);
  // Last k blocks (all-parity-heavy subset) must decode.
  std::vector<std::size_t> ids;
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t id = n - k; id < static_cast<std::size_t>(n); ++id) {
    ids.push_back(id);
    chosen.push_back(views[id]);
  }
  std::vector<Byte> out(k * w);
  rs.decode(ids, chosen, out);
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(DeployedShapes, RsMdsSweep,
                         ::testing::Values(std::pair{4, 2}, std::pair{6, 3},
                                           std::pair{6, 4}, std::pair{9, 6},
                                           std::pair{12, 6}, std::pair{14, 10},
                                           std::pair{20, 10}));

}  // namespace
}  // namespace carousel::codes
