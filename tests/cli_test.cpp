// End-to-end tests of the carouselctl archive format: encode to disk,
// destroy block files, decode and repair — the full operator workflow.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "cli/cli.h"
#include "codes/carousel.h"
#include "net/block_server.h"
#include "net/client.h"
#include "net/meta_log.h"
#include "net/persistence.h"
#include "net/repair_scheduler.h"
#include "net/store.h"
#include "test_util.h"
#include "util/crc32.h"

namespace carousel::cli {
namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("carousel_cli_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path write_input(std::size_t bytes, std::uint32_t seed = 7) {
    auto data = test::random_bytes(bytes, seed);
    fs::path p = dir_ / "input.bin";
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    return p;
  }

  static std::vector<std::uint8_t> slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  fs::path dir_;
};

TEST_F(CliTest, EncodeDecodeRoundTrip) {
  auto input = write_input(100'000);
  encode_file(input, dir_ / "arc", {12, 6, 10, 12}, 4096);
  std::size_t used = decode_file(dir_ / "arc", dir_ / "out.bin");
  EXPECT_EQ(slurp(dir_ / "out.bin"), slurp(input));
  EXPECT_LE(used, 12u);
}

TEST_F(CliTest, DecodeSurvivesNMinusKLosses) {
  auto input = write_input(50'000, 9);
  encode_file(input, dir_ / "arc", {12, 6, 10, 10}, 2048);
  for (int i : {1, 4, 7, 9, 10, 11})  // 6 = n-k block files gone
    fs::remove(dir_ / "arc" / ("block_" + std::string(i < 10 ? "00" : "0") +
                               std::to_string(i) + ".bin"));
  decode_file(dir_ / "arc", dir_ / "out.bin");
  EXPECT_EQ(slurp(dir_ / "out.bin"), slurp(input));
}

TEST_F(CliTest, DecodeFailsBeyondTolerance) {
  auto input = write_input(10'000, 3);
  encode_file(input, dir_ / "arc", {6, 3, 4, 6}, 1024);
  for (int i = 0; i < 4; ++i)
    fs::remove(dir_ / "arc" / ("block_00" + std::to_string(i) + ".bin"));
  EXPECT_THROW(decode_file(dir_ / "arc", dir_ / "out.bin"),
               std::runtime_error);
}

TEST_F(CliTest, TruncatedBlockFileTreatedAsLost) {
  auto input = write_input(10'000, 5);
  encode_file(input, dir_ / "arc", {6, 3, 4, 6}, 1024);
  // Truncate one block file: decoder must ignore it and still succeed.
  fs::resize_file(dir_ / "arc" / "block_002.bin", 10);
  decode_file(dir_ / "arc", dir_ / "out.bin");
  EXPECT_EQ(slurp(dir_ / "out.bin"), slurp(input));
}

TEST_F(CliTest, RepairRestoresIdenticalBlockFile) {
  auto input = write_input(60'000, 11);
  encode_file(input, dir_ / "arc", {12, 6, 10, 12}, 2048);
  auto original = slurp(dir_ / "arc" / "block_005.bin");
  fs::remove(dir_ / "arc" / "block_005.bin");
  auto traffic = repair_block_file(dir_ / "arc", 5);
  EXPECT_EQ(slurp(dir_ / "arc" / "block_005.bin"), original);
  // MSR-optimal: 2 block-files' worth, not 6.
  EXPECT_EQ(traffic, 2 * original.size());
  decode_file(dir_ / "arc", dir_ / "out.bin");
  EXPECT_EQ(slurp(dir_ / "out.bin"), slurp(input));
}

TEST_F(CliTest, RepairFallsBackUnderManyLosses) {
  auto input = write_input(30'000, 13);
  encode_file(input, dir_ / "arc", {12, 6, 10, 12}, 2048);
  auto original = slurp(dir_ / "arc" / "block_000.bin");
  for (int i : {0, 2, 8})  // 3 losses: fewer than d=10 survivors
    fs::remove(dir_ / "arc" / ("block_00" + std::to_string(i) + ".bin"));
  repair_block_file(dir_ / "arc", 0);
  EXPECT_EQ(slurp(dir_ / "arc" / "block_000.bin"), original);
}

TEST_F(CliTest, ChecksumGuardsCorruption) {
  auto input = write_input(20'000, 17);
  encode_file(input, dir_ / "arc", {6, 3, 3, 6}, 1024);
  // Flip one byte in a DATA-carrying region of every copy-path block: the
  // decode output changes, so the CRC must reject it.
  {
    std::fstream f(dir_ / "arc" / "block_001.bin",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(3);
    char c;
    f.seekg(3);
    f.get(c);
    c = static_cast<char>(c ^ 0x1);
    f.seekp(3);
    f.put(c);
  }
  EXPECT_THROW(decode_file(dir_ / "arc", dir_ / "out.bin"),
               std::runtime_error);
}

TEST_F(CliTest, ManifestRoundTrip) {
  Manifest m;
  m.params = {12, 6, 10, 8};
  m.file_bytes = 12345;
  m.block_bytes = 4096;
  m.stripes = 3;
  m.checksum = 0xDEADBEEF;
  auto parsed = Manifest::parse(m.serialize());
  EXPECT_EQ(parsed.params, m.params);
  EXPECT_EQ(parsed.file_bytes, m.file_bytes);
  EXPECT_EQ(parsed.block_bytes, m.block_bytes);
  EXPECT_EQ(parsed.stripes, m.stripes);
  EXPECT_EQ(parsed.checksum, m.checksum);
  EXPECT_THROW(Manifest::parse("format=unknown\n"), std::runtime_error);
  EXPECT_THROW(Manifest::parse("format=carousel-archive-v1\nn=3\n"),
               std::runtime_error);
}

TEST_F(CliTest, Crc32KnownVector) {
  // "123456789" -> 0xCBF43926 (IEEE CRC-32 check value).
  const char* s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST_F(CliTest, InfoDescribesArchive) {
  auto input = write_input(10'000, 19);
  encode_file(input, dir_ / "arc", {12, 6, 10, 10}, 2048);
  fs::remove(dir_ / "arc" / "block_003.bin");
  auto text = describe(dir_ / "arc");
  EXPECT_NE(text.find("(12,6,10,10)"), std::string::npos);
  EXPECT_NE(text.find("11/12 present"), std::string::npos);
}

TEST_F(CliTest, RunDispatchesAndValidates) {
  auto input = write_input(5'000, 23);
  EXPECT_EQ(run({}), 2);
  EXPECT_EQ(run({"bogus"}), 2);
  EXPECT_EQ(run({"encode", input.string(), (dir_ / "arc").string(), "6", "3",
                 "4", "6", "1024"}),
            0);
  EXPECT_EQ(run({"info", (dir_ / "arc").string()}), 0);
  EXPECT_EQ(run({"decode", (dir_ / "arc").string(),
                 (dir_ / "out.bin").string()}),
            0);
  EXPECT_EQ(slurp(dir_ / "out.bin"), slurp(input));
  EXPECT_EQ(run({"repair", (dir_ / "arc").string(), "2"}), 0);
  EXPECT_EQ(run({"decode", "/nonexistent/dir", "x"}), 1);
}

TEST_F(CliTest, RecoverCommandScansAndQuarantines) {
  // Build a block-server data directory by hand: one intact block, one torn
  // write (truncated payload under a full-length commit record).
  namespace cnet = carousel::net;
  fs::path store_dir = dir_ / "store";
  {
    cnet::PersistentBlockStore store(store_dir);
    auto good = test::random_bytes(512, 3);
    auto torn = test::random_bytes(512, 4);
    ASSERT_TRUE(store.put(cnet::BlockKey{1, 0, 0}, good,
                          carousel::util::crc32(good)));
    ASSERT_FALSE(store.put(cnet::BlockKey{1, 0, 1}, torn,
                           carousel::util::crc32(torn),
                           cnet::CrashPoint::kTornWrite));
  }
  std::string report = recover_store(store_dir);
  EXPECT_NE(report.find("recovered 1 intact block(s)"), std::string::npos);
  EXPECT_NE(report.find("quarantined 2 file(s)"), std::string::npos);
  EXPECT_NE(report.find("torn payloads:      1"), std::string::npos);

  // The command is idempotent: a second scan finds a clean directory.
  EXPECT_EQ(run({"recover", store_dir.string()}), 0);
  std::string again = recover_store(store_dir);
  EXPECT_NE(again.find("recovered 1 intact block(s)"), std::string::npos);
  EXPECT_NE(again.find("quarantined 0 file(s)"), std::string::npos);

  // Argument validation: both commands demand their operands.
  EXPECT_EQ(run({"recover"}), 2);
  EXPECT_EQ(run({"serve"}), 2);
}

TEST_F(CliTest, MetaCommandInspectsCoordinatorJournal) {
  namespace cnet = carousel::net;
  fs::path meta_dir = dir_ / "meta";
  {
    cnet::MetaLog log(meta_dir, 0xC0FFEE01, {});
    log.put_intent(7, 64, 1, {{0, 1, 2, 3, 4, 5}});
    log.put_commit(7);
  }
  std::string report = meta_status(meta_dir);
  EXPECT_NE(report.find("snapshot: none"), std::string::npos);
  EXPECT_NE(report.find("put_intent: 1"), std::string::npos);
  EXPECT_NE(report.find("put_commit: 1"), std::string::npos);

  // Inspection is read-only: the journal is byte-identical afterwards,
  // even with a deliberately torn tail appended.
  std::ofstream(meta_dir / "journal",
                std::ios::binary | std::ios::app)
      << "torn";
  const auto before = fs::file_size(meta_dir / "journal");
  report = meta_status(meta_dir);
  EXPECT_NE(report.find("TORN TAIL"), std::string::npos);
  EXPECT_EQ(fs::file_size(meta_dir / "journal"), before);

  EXPECT_EQ(run({"meta", meta_dir.string()}), 0);
  EXPECT_EQ(run({"meta"}), 2);
}

TEST_F(CliTest, ClusterCommandRendersAliveAndDeadServers) {
  namespace cnet = carousel::net;
  // Two live servers (one holding a block) and one freshly-freed port: the
  // table must show both verdicts and count only reachable inventory.
  cnet::BlockServer alive0;
  cnet::BlockServer alive1;
  std::uint16_t dead_port;
  {
    cnet::BlockServer ephemeral;
    dead_port = ephemeral.port();
  }
  auto data = test::random_bytes(768, 21);
  cnet::Client writer(alive0.port());
  writer.put(cnet::BlockKey{9, 0, 0}, data);

  std::string table =
      cluster_status({alive0.port(), alive1.port(), dead_port});
  EXPECT_NE(table.find("cluster of 3 servers:"), std::string::npos);
  EXPECT_NE(table.find("alive  1 blocks  768 bytes"), std::string::npos);
  EXPECT_NE(table.find("alive  0 blocks  0 bytes"), std::string::npos);
  EXPECT_NE(table.find("dead   (unreachable)"), std::string::npos);
  EXPECT_NE(table.find("summary: 2/3 alive, 1 blocks / 768 bytes"),
            std::string::npos);
  EXPECT_NE(table.find("placement: 0..1 blocks per reachable server"),
            std::string::npos);
  EXPECT_NE(table.find("pending re-placement: blocks of 1 dead server "
                       "await re-homing"),
            std::string::npos);

  // A fully-reachable cluster reports nothing pending.
  std::string healthy = cluster_status({alive0.port(), alive1.port()});
  EXPECT_NE(healthy.find("summary: 2/2 alive"), std::string::npos);
  EXPECT_NE(healthy.find("pending re-placement: none"), std::string::npos);

  // run() dispatch: operands demanded, ports validated, happy path exits 0.
  EXPECT_EQ(run({"cluster"}), 2);
  EXPECT_EQ(run({"cluster", "0"}), 1);
  EXPECT_EQ(run({"cluster", "70000"}), 1);
  EXPECT_EQ(run({"cluster", std::to_string(alive0.port()),
                 std::to_string(dead_port)}),
            0);
}

TEST_F(CliTest, ClusterCommandRendersRackColumnAndRollup) {
  namespace cnet = carousel::net;
  // Two racks: servers {a, b} in rack 0, {c, dead} in rack 1.  The table
  // must show the rack column per server and a per-rack rollup.
  cnet::BlockServer a;
  cnet::BlockServer b;
  cnet::BlockServer c;
  std::uint16_t dead_port;
  {
    cnet::BlockServer ephemeral;
    dead_port = ephemeral.port();
  }
  auto data = test::random_bytes(512, 33);
  cnet::Client writer(a.port());
  writer.put(cnet::BlockKey{4, 0, 0}, data);

  std::string table = cluster_status({a.port(), b.port(), c.port(), dead_port},
                                     {0, 0, 1, 1});
  EXPECT_NE(table.find("rack 0  alive"), std::string::npos);
  EXPECT_NE(table.find("rack 1  dead"), std::string::npos);
  EXPECT_NE(table.find("rack rollup:"), std::string::npos);
  EXPECT_NE(table.find("rack 0  2 servers  2 alive  1 blocks  512 bytes"),
            std::string::npos);
  EXPECT_NE(table.find("rack 1  2 servers  1 alive  0 blocks  0 bytes"),
            std::string::npos);
  EXPECT_EQ(table.find("[rack down]"), std::string::npos);

  // A rack whose every member is unreachable gets the down marker — the
  // verdict the failure-domain invariant exists to make survivable.
  std::string down = cluster_status({a.port(), dead_port}, {0, 1});
  EXPECT_NE(down.find("rack 1  1 server  0 alive  0 blocks  0 bytes"
                      "  [rack down]"),
            std::string::npos);

  // One label per port, no more, no fewer.
  EXPECT_THROW(cluster_status({a.port()}, {0, 1}), std::invalid_argument);

  // Unlabeled fleets keep the store's one-rack-per-server default and skip
  // the rollup (it would just repeat the table).
  std::string plain = cluster_status({a.port(), b.port()});
  EXPECT_NE(plain.find("server 0  port"), std::string::npos);
  EXPECT_NE(plain.find("rack 1  alive"), std::string::npos);
  EXPECT_EQ(plain.find("rack rollup:"), std::string::npos);

  // run() parses port:rack suffixes; a dangling colon is an error, not a
  // silent default.
  EXPECT_EQ(run({"cluster", std::to_string(a.port()) + ":0",
                 std::to_string(dead_port) + ":0"}),
            0);
  EXPECT_EQ(run({"cluster", std::to_string(a.port()) + ":"}), 1);
}

TEST_F(CliTest, ReadsCommandRendersStoreSeries) {
  namespace cnet = carousel::net;
  // Before any CarouselStore runs in this process the global registry holds
  // no store series; the command says so instead of going quiet.
  cnet::BlockServer observer;
  std::string empty = reads_status(observer.port());
  EXPECT_NE(empty.find("no carousel_store_* series"), std::string::npos);

  codes::Carousel code(6, 4, 4, 6);
  std::vector<std::unique_ptr<cnet::BlockServer>> fleet;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 6; ++i) {
    fleet.push_back(std::make_unique<cnet::BlockServer>());
    ports.push_back(fleet.back()->port());
  }
  cnet::CarouselStore store(code, ports, code.s() * 4);
  auto data = test::random_bytes(4 * code.s() * 4, 32);
  store.put_file(1, data);
  EXPECT_EQ(store.read_file(1, data.size()), data);

  std::string table = reads_status(observer.port());
  EXPECT_NE(table.find("store read path on port"), std::string::npos);
  EXPECT_NE(table.find("carousel_store_range_gets_total"), std::string::npos);
  EXPECT_NE(table.find("carousel_store_hedged_reads_total"),
            std::string::npos);
  EXPECT_NE(table.find("carousel_store_hedge_wins_total"), std::string::npos);
  EXPECT_EQ(table.find("carousel_repair_"), std::string::npos);

  // run() dispatch: operand demanded, port validated, happy path exits 0.
  EXPECT_EQ(run({"reads"}), 2);
  EXPECT_EQ(run({"reads", "0"}), 1);
  EXPECT_EQ(run({"reads", std::to_string(observer.port())}), 0);
}

TEST_F(CliTest, RepairsCommandRendersSchedulerSeries) {
  namespace cnet = carousel::net;
  // The metrics endpoint of any in-process server also renders the global
  // registry, which is where a scheduler without an explicit registry
  // lands; before one exists the command says so instead of going quiet.
  cnet::BlockServer observer;
  std::string empty = repairs_status(observer.port());
  EXPECT_NE(empty.find("no carousel_repair_* series"), std::string::npos);

  codes::Carousel code(6, 4, 4, 6);
  std::vector<std::unique_ptr<cnet::BlockServer>> fleet;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 6; ++i) {
    fleet.push_back(std::make_unique<cnet::BlockServer>());
    ports.push_back(fleet.back()->port());
  }
  cnet::CarouselStore store(code, ports, code.s() * 4);
  auto data = test::random_bytes(4 * code.s() * 4, 31);
  store.put_file(1, data);
  cnet::RepairScheduler sched(store);
  ASSERT_TRUE(store.drop_block(1, 0, 2));
  sched.enqueue({1, 0, 2}, cnet::RepairScheduler::Kind::kRepair, 1);
  EXPECT_EQ(sched.step(), cnet::RepairScheduler::StepResult::kDispatched);

  std::string table = repairs_status(observer.port());
  EXPECT_NE(table.find("repair scheduler on port"), std::string::npos);
  EXPECT_NE(table.find("carousel_repair_enqueued_total"), std::string::npos);
  EXPECT_NE(table.find("carousel_repair_completed_total"), std::string::npos);
  EXPECT_NE(table.find("carousel_repair_allowed_concurrency"),
            std::string::npos);
  EXPECT_EQ(table.find("carousel_store_"), std::string::npos);

  // run() dispatch: operand demanded, port validated, happy path exits 0.
  EXPECT_EQ(run({"repairs"}), 2);
  EXPECT_EQ(run({"repairs", "0"}), 1);
  EXPECT_EQ(run({"repairs", std::to_string(observer.port())}), 0);
}

}  // namespace
}  // namespace carousel::cli
