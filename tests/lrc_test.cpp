#include <gtest/gtest.h>

#include <numeric>

#include "codes/lrc.h"
#include "test_util.h"

namespace carousel::codes {
namespace {

using test::random_bytes;
using test::split_const_spans;
using test::split_spans;
using test::subsets;

// Azure WAS ships LRC(12, 2, 2); the tests use the scaled LRC(6, 2, 2).
TEST(Lrc, GeometryAndValidation) {
  LocalReconstructionCode lrc(6, 2, 2);
  EXPECT_EQ(lrc.n(), 10u);
  EXPECT_EQ(lrc.group_size(), 3u);
  EXPECT_EQ(lrc.global_parities(), 2u);
  EXPECT_EQ(lrc.group_of(0), 0u);
  EXPECT_EQ(lrc.group_of(5), 1u);
  EXPECT_EQ(lrc.group_of(6), 0u);  // local parity of group 0
  EXPECT_EQ(lrc.group_of(7), 1u);
  EXPECT_EQ(lrc.group_of(9), static_cast<std::size_t>(-1));
  EXPECT_THROW(LocalReconstructionCode(5, 2, 2), std::invalid_argument);
  EXPECT_THROW(LocalReconstructionCode(6, 0, 2), std::invalid_argument);
  EXPECT_THROW(LocalReconstructionCode(6, 2, 0), std::invalid_argument);
}

TEST(Lrc, SystematicAndLocalParityStructure) {
  LocalReconstructionCode lrc(6, 2, 2);
  const std::size_t w = 64;
  auto data = random_bytes(6 * w);
  std::vector<Byte> blob(10 * w);
  lrc.encode(data, split_spans(blob, 10));
  // Data verbatim.
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_TRUE(std::equal(blob.begin() + i * w, blob.begin() + (i + 1) * w,
                           data.begin() + i * w));
  // Local parity = XOR of its group.
  for (std::size_t b = 0; b < w; ++b) {
    EXPECT_EQ(blob[6 * w + b], Byte(data[b] ^ data[w + b] ^ data[2 * w + b]));
    EXPECT_EQ(blob[7 * w + b],
              Byte(data[3 * w + b] ^ data[4 * w + b] ^ data[5 * w + b]));
  }
}

TEST(Lrc, LocalRepairReadsOnlyTheGroup) {
  LocalReconstructionCode lrc(6, 2, 2);
  const std::size_t w = 48;
  auto data = random_bytes(6 * w);
  std::vector<Byte> blob(10 * w);
  lrc.encode(data, split_spans(blob, 10));
  auto views = split_const_spans(blob, 10);
  // Every data block and local parity repairs within its group.
  for (std::size_t failed = 0; failed < 8; ++failed) {
    auto ids = lrc.repair_set(failed);
    EXPECT_EQ(ids.size(), lrc.group_size())
        << "local repair fan-in is k/l, failed=" << failed;
    std::vector<std::span<const Byte>> chosen;
    for (std::size_t id : ids) chosen.push_back(views[id]);
    std::vector<Byte> rebuilt(w);
    auto stats = lrc.reconstruct(failed, ids, chosen, rebuilt);
    EXPECT_TRUE(
        std::equal(rebuilt.begin(), rebuilt.end(), views[failed].begin()))
        << "failed=" << failed;
    EXPECT_EQ(stats.bytes_read, lrc.group_size() * w);
  }
}

TEST(Lrc, GlobalParityRepairNeedsAllData) {
  LocalReconstructionCode lrc(6, 2, 2);
  const std::size_t w = 32;
  auto data = random_bytes(6 * w);
  std::vector<Byte> blob(10 * w);
  lrc.encode(data, split_spans(blob, 10));
  auto views = split_const_spans(blob, 10);
  for (std::size_t failed : {8u, 9u}) {
    auto ids = lrc.repair_set(failed);
    EXPECT_EQ(ids.size(), 6u);
    std::vector<std::span<const Byte>> chosen;
    for (std::size_t id : ids) chosen.push_back(views[id]);
    std::vector<Byte> rebuilt(w);
    lrc.reconstruct(failed, ids, chosen, rebuilt);
    EXPECT_TRUE(
        std::equal(rebuilt.begin(), rebuilt.end(), views[failed].begin()));
  }
}

TEST(Lrc, DecodeFromAvailableAfterFailures) {
  LocalReconstructionCode lrc(6, 2, 2);
  const std::size_t w = 40;
  auto data = random_bytes(6 * w);
  std::vector<Byte> blob(10 * w);
  lrc.encode(data, split_spans(blob, 10));
  auto views = split_const_spans(blob, 10);
  // Knock out a data block, a local parity and a global parity.
  std::vector<std::size_t> ids;
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 1 || i == 7 || i == 9) continue;
    ids.push_back(i);
    chosen.push_back(views[i]);
  }
  std::vector<Byte> out(data.size());
  lrc.decode_from_available(ids, chosen, out);
  EXPECT_EQ(out, data);
}

TEST(Lrc, RecoverabilityCensus) {
  // LRC is not MDS: count recoverable failure patterns per failure size and
  // pin the structure.  All single/double/triple failures of LRC(6,2,2)
  // must decode; some quadruples must not (4 = n - k here).
  LocalReconstructionCode lrc(6, 2, 2);
  for (std::size_t f = 1; f <= 3; ++f) {
    for (const auto& fail : subsets(10, f)) {
      std::vector<bool> avail(10, true);
      for (std::size_t i : fail) avail[i] = false;
      EXPECT_TRUE(lrc.recoverable(avail)) << "f=" << f;
    }
  }
  std::size_t recoverable = 0, total = 0;
  for (const auto& fail : subsets(10, 4)) {
    std::vector<bool> avail(10, true);
    for (std::size_t i : fail) avail[i] = false;
    recoverable += lrc.recoverable(avail);
    ++total;
  }
  EXPECT_LT(recoverable, total) << "LRC must not be MDS";
  EXPECT_GT(recoverable, total / 2) << "most quadruples decode (Azure LRC)";
  // A whole group plus its local parity gone (4 losses covering one group)
  // is exactly recoverable iff the two global parities + nothing else can
  // restore 3 unknowns — it is not.
  std::vector<bool> avail(10, true);
  avail[0] = avail[1] = avail[2] = avail[6] = false;
  EXPECT_FALSE(lrc.recoverable(avail));
}

TEST(Lrc, RepairSetValidation) {
  LocalReconstructionCode lrc(6, 2, 2);
  EXPECT_THROW(lrc.repair_set(10), std::invalid_argument);
  const std::size_t w = 16;
  auto data = random_bytes(6 * w);
  std::vector<Byte> blob(10 * w);
  lrc.encode(data, split_spans(blob, 10));
  auto views = split_const_spans(blob, 10);
  std::vector<std::size_t> wrong = {3, 4, 5};  // group 1 helpers for block 0
  std::vector<std::span<const Byte>> chosen = {views[3], views[4], views[5]};
  std::vector<Byte> out(w);
  EXPECT_THROW(lrc.reconstruct(0, wrong, chosen, out), std::invalid_argument);
}

// Parameterised sweep over deployed-style LRC shapes.
class LrcGrid
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LrcGrid, RoundTripAndLocalRepair) {
  auto [k, l, g] = GetParam();
  LocalReconstructionCode lrc(k, l, g);
  const std::size_t w = 24;
  auto data = random_bytes(k * w, k * 100 + l);
  std::vector<Byte> blob(lrc.n() * w);
  lrc.encode(data, split_spans(blob, lrc.n()));
  auto views = split_const_spans(blob, lrc.n());
  // Decode with one data block missing.
  std::vector<std::size_t> ids;
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t i = 1; i < lrc.n(); ++i) {
    ids.push_back(i);
    chosen.push_back(views[i]);
  }
  std::vector<Byte> out(data.size());
  lrc.decode_from_available(ids, chosen, out);
  EXPECT_EQ(out, data);
  // Local repair of block 0.
  auto rs = lrc.repair_set(0);
  EXPECT_EQ(rs.size(), lrc.group_size());
}

INSTANTIATE_TEST_SUITE_P(DeployedShapes, LrcGrid,
                         ::testing::Values(std::tuple{12, 2, 2},   // Azure
                                           std::tuple{6, 2, 2},
                                           std::tuple{10, 5, 3},
                                           std::tuple{8, 4, 2},
                                           std::tuple{16, 4, 4}));

}  // namespace
}  // namespace carousel::codes
