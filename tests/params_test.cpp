#include <gtest/gtest.h>

#include "codes/params.h"

namespace carousel::codes {
namespace {

TEST(CodeParams, DerivedQuantities) {
  CodeParams p{12, 6, 10, 12};
  EXPECT_EQ(p.alpha(), 5u);
  EXPECT_FALSE(p.trivial_repair());
  EXPECT_DOUBLE_EQ(p.repair_traffic_blocks(), 2.0);
  CodeParams rs{9, 6, 6, 6};
  EXPECT_EQ(rs.alpha(), 1u);
  EXPECT_TRUE(rs.trivial_repair());
  EXPECT_DOUBLE_EQ(rs.repair_traffic_blocks(), 6.0);
  EXPECT_EQ(p.to_string(), "(12,6,10,12)");
}

TEST(CodeParams, ValidationMatrix) {
  // Valid corners.
  EXPECT_NO_THROW((CodeParams{2, 1, 1, 1}.validate()));       // minimal
  EXPECT_NO_THROW((CodeParams{12, 6, 6, 6}.validate()));      // RS
  EXPECT_NO_THROW((CodeParams{12, 6, 10, 12}.validate()));    // paper
  EXPECT_NO_THROW((CodeParams{4, 2, 3, 4}.validate()));       // d=2k-1, k=2
  EXPECT_NO_THROW((CodeParams{128, 64, 126, 128}.validate())); // design max

  // Each constraint violated in isolation.
  EXPECT_THROW((CodeParams{6, 0, 3, 3}.validate()), std::invalid_argument);
  EXPECT_THROW((CodeParams{6, 7, 7, 7}.validate()), std::invalid_argument);
  EXPECT_THROW((CodeParams{129, 6, 10, 6}.validate()), std::invalid_argument);
  EXPECT_THROW((CodeParams{6, 3, 2, 3}.validate()), std::invalid_argument);
  EXPECT_THROW((CodeParams{6, 3, 6, 3}.validate()), std::invalid_argument);
  EXPECT_THROW((CodeParams{6, 3, 3, 2}.validate()), std::invalid_argument);
  EXPECT_THROW((CodeParams{6, 3, 3, 7}.validate()), std::invalid_argument);
  // The product-matrix gap k < d < max(k+1, 2k-2).
  EXPECT_THROW((CodeParams{10, 4, 5, 4}.validate()), std::invalid_argument);
  EXPECT_THROW((CodeParams{12, 5, 6, 5}.validate()), std::invalid_argument);
  EXPECT_THROW((CodeParams{12, 5, 7, 5}.validate()), std::invalid_argument);
  EXPECT_NO_THROW((CodeParams{12, 5, 8, 5}.validate()));  // 2k-2 boundary
}

TEST(CodeParams, EqualityAndFractionHelper) {
  EXPECT_EQ((CodeParams{6, 3, 4, 5}), (CodeParams{6, 3, 4, 5}));
  EXPECT_NE((CodeParams{6, 3, 4, 5}), (CodeParams{6, 3, 4, 6}));
  EXPECT_EQ(reduce_fraction(30, 12), (std::pair<std::size_t, std::size_t>{5, 2}));
  EXPECT_EQ(reduce_fraction(5, 1), (std::pair<std::size_t, std::size_t>{5, 1}));
  EXPECT_EQ(reduce_fraction(7, 7), (std::pair<std::size_t, std::size_t>{1, 1}));
}

}  // namespace
}  // namespace carousel::codes
