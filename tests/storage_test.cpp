#include <gtest/gtest.h>

#include "codes/carousel.h"
#include "storage/erasure_file.h"
#include "test_util.h"

namespace carousel::storage {
namespace {

using codes::Carousel;
using test::random_bytes;

TEST(ErasureFile, RoundTripSingleStripe) {
  Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 16;
  auto file = random_bytes(6 * block);
  ErasureFile ef(code, file, block);
  EXPECT_EQ(ef.stripes(), 1u);
  EXPECT_EQ(ef.stored_bytes(), 12 * block);
  EXPECT_TRUE(ef.verify());
  EXPECT_EQ(ef.read_all(), file);
}

TEST(ErasureFile, RoundTripMultiStripeWithPadding) {
  Carousel code(6, 3, 4, 5);
  const std::size_t block = code.s() * 8;
  // 2.5 stripes worth of data: forces padding in the last stripe.
  auto file = random_bytes(3 * block * 2 + block / 2 + 3);
  ErasureFile ef(code, file, block);
  EXPECT_EQ(ef.stripes(), 3u);
  EXPECT_EQ(ef.read_all(), file);
}

TEST(ErasureFile, EmptyFileOccupiesOneStripe) {
  Carousel code(4, 2, 2, 4);
  ErasureFile ef(code, {}, code.s() * 4);
  EXPECT_EQ(ef.stripes(), 1u);
  EXPECT_TRUE(ef.read_all().empty());
}

TEST(ErasureFile, RejectsMisalignedBlockSize) {
  Carousel code(6, 3, 4, 6);  // s = alpha = 2... expansion dependent
  auto file = random_bytes(100);
  EXPECT_THROW(ErasureFile(code, file, code.s() * 4 + 1),
               std::invalid_argument);
  EXPECT_THROW(ErasureFile(code, file, 0), std::invalid_argument);
}

TEST(ErasureFile, DataExtentsTileTheFile) {
  Carousel code(12, 6, 10, 10);
  const std::size_t block = code.s() * 12;
  auto file = random_bytes(6 * block * 2);  // two stripes
  ErasureFile ef(code, file, block);
  // Extents of data-carrying blocks must partition [0, file size).
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t s = 0; s < ef.stripes(); ++s)
    for (std::size_t i = 0; i < code.n(); ++i) {
      auto e = ef.data_extent(s, i);
      if (i >= code.p()) {
        EXPECT_EQ(e.length, 0u);
      }
      if (e.length) ranges.emplace_back(e.file_offset, e.length);
    }
  std::sort(ranges.begin(), ranges.end());
  std::size_t cursor = 0;
  for (auto [off, len] : ranges) {
    EXPECT_EQ(off, cursor);
    cursor = off + len;
  }
  EXPECT_EQ(cursor, file.size());
}

TEST(ErasureFile, ExtentBytesMatchOriginalData) {
  Carousel code(6, 3, 4, 6);
  const std::size_t block = code.s() * 10;
  auto file = random_bytes(3 * block);
  ErasureFile ef(code, file, block);
  for (std::size_t i = 0; i < code.p(); ++i) {
    auto e = ef.data_extent(0, i);
    ASSERT_GT(e.length, 0u);
    auto b = ef.block(0, i);
    EXPECT_TRUE(std::equal(b.begin(), b.begin() + e.length,
                           file.begin() + e.file_offset))
        << "block " << i;
  }
}

TEST(ErasureFile, ReadWithFailuresUsesParityStandIns) {
  Carousel code(12, 6, 10, 10);
  const std::size_t block = code.s() * 8;
  auto file = random_bytes(6 * block);
  ErasureFile ef(code, file, block);

  codes::IoStats healthy{};
  ef.read_all(&healthy);
  EXPECT_EQ(healthy.sources, code.p());

  ef.fail_block_index(3);  // a data-carrying block
  codes::IoStats degraded{};
  EXPECT_EQ(ef.read_all(&degraded), file);
  EXPECT_EQ(degraded.sources, code.p());  // still p readers (one stand-in)
  EXPECT_EQ(degraded.bytes_read, healthy.bytes_read);  // k/p each, total k
}

TEST(ErasureFile, ReadFallsBackToAnyKDecode) {
  Carousel code(6, 3, 3, 6);  // p = n: no pure-parity stand-ins
  const std::size_t block = code.s() * 6;
  auto file = random_bytes(3 * block);
  ErasureFile ef(code, file, block);
  ef.fail_block_index(0);
  ef.fail_block_index(4);
  EXPECT_EQ(ef.read_all(), file);
}

TEST(ErasureFile, UnrecoverableStripeThrows) {
  Carousel code(4, 2, 2, 4);
  const std::size_t block = code.s() * 4;
  auto file = random_bytes(2 * block);
  ErasureFile ef(code, file, block);
  ef.fail_block_index(0);
  ef.fail_block_index(1);
  ef.fail_block_index(2);
  EXPECT_THROW(ef.read_all(), std::runtime_error);
}

TEST(ErasureFile, RepairRestoresExactBytesAtOptimalTraffic) {
  Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 8;
  auto file = random_bytes(6 * block);
  ErasureFile ef(code, file, block);
  auto original = std::vector<codes::Byte>(ef.block(0, 5).begin(),
                                           ef.block(0, 5).end());
  ef.set_block_available(0, 5, false);
  auto stats = ef.repair_block(0, 5);
  EXPECT_TRUE(ef.block_available(0, 5));
  EXPECT_TRUE(std::equal(original.begin(), original.end(),
                         ef.block(0, 5).begin()));
  EXPECT_TRUE(ef.verify());
  // Optimal repair traffic: d/(d-k+1) = 2 block sizes, not k = 6.
  EXPECT_DOUBLE_EQ(double(stats.bytes_read) / double(block), 2.0);
}

TEST(ErasureFile, RepairFallsBackBelowDHelpers) {
  Carousel code(6, 3, 4, 6);
  const std::size_t block = code.s() * 4;
  auto file = random_bytes(3 * block);
  ErasureFile ef(code, file, block);
  EXPECT_THROW(ef.repair_block(0, 1), std::invalid_argument);  // not missing
  ef.fail_block_index(1);
  ef.fail_block_index(2);
  ef.fail_block_index(3);  // only 3 = k helpers left, d = 4
  auto stats = ef.repair_block(0, 1);  // MDS fallback path
  EXPECT_EQ(stats.bytes_read, code.k() * block);  // k whole blocks
  EXPECT_TRUE(ef.block_available(0, 1));
  // Remaining failures can now heal at optimal traffic again.
  auto stats2 = ef.repair_block(0, 2);
  EXPECT_DOUBLE_EQ(double(stats2.bytes_read) / double(block),
                   code.params().repair_traffic_blocks());
  ef.repair_block(0, 3);
  EXPECT_TRUE(ef.verify());
  EXPECT_EQ(ef.read_all(), file);
}

TEST(ErasureFile, RepairUnrecoverableThrows) {
  Carousel code(4, 2, 2, 4);
  const std::size_t block = code.s() * 4;
  auto file = random_bytes(2 * block);
  ErasureFile ef(code, file, block);
  ef.fail_block_index(0);
  ef.fail_block_index(1);
  ef.fail_block_index(2);  // 1 survivor < k
  EXPECT_THROW(ef.repair_block(0, 0), std::runtime_error);
}

TEST(ErasureFile, WriteUpdatesDataAndParityInPlace) {
  Carousel code(12, 6, 10, 10);
  const std::size_t block = code.s() * 32;
  auto file = random_bytes(6 * block * 2);  // two stripes
  ErasureFile ef(code, file, block);

  // Overwrite an unaligned range spanning unit boundaries and both stripes.
  auto patch = random_bytes(block + 77, 123);
  const std::size_t off = 6 * block - 50;  // tail of stripe 0 into stripe 1
  std::size_t touched = ef.write(off, patch);
  EXPECT_GT(touched, 0u);
  std::copy(patch.begin(), patch.end(), file.begin() + off);

  EXPECT_TRUE(ef.verify()) << "parity must track the delta update";
  EXPECT_EQ(ef.read_all(), file);

  // The file must also decode correctly from parity-only sets afterwards.
  ef.fail_block_index(0);
  ef.fail_block_index(3);
  EXPECT_EQ(ef.read_all(), file);
}

TEST(ErasureFile, WriteTouchesOnlyDependentUnits) {
  // One in-unit byte write touches exactly the units whose generator rows
  // read that message unit: its own data unit + dependent parity units.
  Carousel code(6, 3, 3, 6);
  const std::size_t block = code.s() * 16;
  auto file = random_bytes(3 * block);
  ErasureFile ef(code, file, block);
  std::vector<Byte> one = {0x5A};
  std::size_t touched = ef.write(10, one);
  std::size_t expected = code.dependents_of(0).size();
  EXPECT_EQ(touched, expected);
  file[10] = 0x5A;
  EXPECT_EQ(ef.read_all(), file);
  EXPECT_TRUE(ef.verify());
}

TEST(ErasureFile, WriteValidation) {
  Carousel code(4, 2, 2, 4);
  const std::size_t block = code.s() * 8;
  auto file = random_bytes(2 * block);
  ErasureFile ef(code, file, block);
  std::vector<Byte> data(10);
  EXPECT_THROW(ef.write(file.size() - 5, data), std::invalid_argument);
  EXPECT_EQ(ef.write(0, {}), 0u);
  ef.fail_block_index(3);
  EXPECT_THROW(ef.write(0, data), std::runtime_error);
}

TEST(LinearCodeDeps, DependentsMatchGeneratorColumns) {
  Carousel code(6, 3, 4, 5);
  for (std::size_t m = 0; m < code.message_units(); ++m) {
    auto deps = code.dependents_of(m);
    ASSERT_FALSE(deps.empty());
    // The message unit's own systematic copy must be among them, coeff 1.
    bool own = false;
    for (const auto& d : deps) {
      EXPECT_EQ(code.generator().at(d.block * code.s() + d.pos, m), d.coeff);
      std::size_t msg;
      if (code.unit_is_systematic(d.block, d.pos, &msg) && msg == m) {
        own = true;
        EXPECT_EQ(d.coeff, 1);
      }
    }
    EXPECT_TRUE(own) << "message unit " << m;
  }
}

TEST(ErasureFile, ScrubFindsAndHealsBitRot) {
  Carousel code(12, 6, 10, 10);
  const std::size_t block = code.s() * 16;
  auto file = random_bytes(6 * block * 2, 41);
  ErasureFile ef(code, file, block);

  auto clean = ef.scrub();
  EXPECT_EQ(clean.blocks_checked, 24u);
  EXPECT_EQ(clean.corrupt_found, 0u);

  // Flip bits in three blocks (a data unit, a parity region, a parity-only
  // block) across both stripes.
  const_cast<codes::Byte&>(ef.block(0, 2)[5]) ^= 0x01;
  const_cast<codes::Byte&>(ef.block(0, 11)[block - 1]) ^= 0x80;
  const_cast<codes::Byte&>(ef.block(1, 7)[block / 2]) ^= 0xFF;

  auto report = ef.scrub();
  EXPECT_EQ(report.corrupt_found, 3u);
  EXPECT_EQ(report.repaired, 3u);
  EXPECT_TRUE(ef.verify());
  EXPECT_EQ(ef.read_all(), file);
  // A follow-up pass finds nothing.
  EXPECT_EQ(ef.scrub().corrupt_found, 0u);
}

TEST(ErasureFile, ScrubWithoutRepairQuarantines) {
  Carousel code(6, 3, 4, 6);
  const std::size_t block = code.s() * 8;
  auto file = random_bytes(3 * block, 43);
  ErasureFile ef(code, file, block);
  const_cast<codes::Byte&>(ef.block(0, 1)[0]) ^= 0x10;
  auto report = ef.scrub(/*repair=*/false);
  EXPECT_EQ(report.corrupt_found, 1u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_FALSE(ef.block_available(0, 1));  // quarantined
  EXPECT_EQ(ef.read_all(), file);          // reads route around it
}

TEST(ErasureFile, ScrubAfterWriteAndRepairStaysClean) {
  // Checksums must track every mutation path: write() and repair_block().
  Carousel code(6, 3, 4, 5);
  const std::size_t block = code.s() * 8;
  auto file = random_bytes(3 * block, 47);
  ErasureFile ef(code, file, block);
  auto patch = random_bytes(50, 48);
  ef.write(13, patch);
  EXPECT_EQ(ef.scrub().corrupt_found, 0u);
  ef.set_block_available(0, 4, false);
  ef.repair_block(0, 4);
  EXPECT_EQ(ef.scrub().corrupt_found, 0u);
}

TEST(ErasureFile, ThreadedEncodeMatchesSequential) {
  Carousel code(12, 6, 10, 10);
  const std::size_t block = code.s() * 16;
  auto file = random_bytes(6 * block * 7 + 123);  // 8 stripes, ragged tail
  ErasureFile seq(code, file, block, 1);
  ErasureFile par(code, file, block, 4);
  EXPECT_EQ(par.stripes(), seq.stripes());
  for (std::size_t s = 0; s < seq.stripes(); ++s)
    for (std::size_t i = 0; i < code.n(); ++i) {
      auto a = seq.block(s, i);
      auto b = par.block(s, i);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
          << "stripe " << s << " block " << i;
    }
  // Threaded read path too, including a degraded stripe.
  par.fail_block_index(2);
  EXPECT_EQ(par.read_all(), file);
  EXPECT_THROW(ErasureFile(code, file, block, 0), std::invalid_argument);
}

TEST(ErasureFile, VerifyDetectsCorruption) {
  Carousel code(4, 2, 2, 4);
  const std::size_t block = code.s() * 4;
  auto file = random_bytes(2 * block);
  ErasureFile ef(code, file, block);
  EXPECT_TRUE(ef.verify());
  // Corrupt one byte through the const view (test-only laundering).
  auto view = ef.block(0, 1);
  const_cast<codes::Byte&>(view[0]) ^= 0xFF;
  EXPECT_FALSE(ef.verify());
}

}  // namespace
}  // namespace carousel::storage
