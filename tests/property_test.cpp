// Randomized parameter-grid properties of the Carousel construction (paper
// §V–§VII), over a seeded grid of (n, k, d, p) mixes: any-k MDS round-trip,
// verbatim data-unit placement, and exact MSR-optimal repair traffic — the
// latter cross-checked against the codec's repair-traffic counter in the
// process-global metrics registry.
//
// The grid is seeded (std::mt19937), so a failure reproduces exactly; it
// spans both base codes (d == k -> RS, d >= max(k+1, 2k-2) -> product-matrix
// MSR) and the full k <= p <= n parallelism range.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <numeric>
#include <random>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "codes/carousel.h"
#include "net/block_server.h"
#include "net/client.h"
#include "net/store.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace carousel::codes {
namespace {

using test::random_bytes;

constexpr std::size_t kUnitBytes = 8;
constexpr std::size_t kMinConfigs = 25;

struct GridEntry {
  std::size_t n, k, d, p;
  std::unique_ptr<Carousel> code;
  std::size_t block_bytes = 0;
};

// Deterministic (n, k, d, p) grid: every draw obeys the paper's parameter
// constraints (k <= p <= n; d == k or max(k+1, 2k-2) <= d < n), deduplicated
// until kMinConfigs distinct mixes exist, with both base-code families and
// the p > k regime guaranteed represented.
const std::vector<GridEntry>& grid() {
  static const std::vector<GridEntry>* entries = [] {
    auto* out = new std::vector<GridEntry>;
    std::mt19937 rng(20170605);  // ICDCS'17 vintage, fixed for replay
    std::set<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>>
        seen;
    std::size_t msr = 0, rs_base = 0, spread = 0;
    while (seen.size() < kMinConfigs || msr < 5 || rs_base < 5 ||
           spread < 5) {
      std::size_t k = std::uniform_int_distribution<std::size_t>(2, 6)(rng);
      std::size_t n =
          std::uniform_int_distribution<std::size_t>(k + 1, k + 6)(rng);
      std::size_t d = k;
      std::size_t d_min = std::max(k + 1, 2 * k - 2);
      if (d_min <= n - 1 && rng() % 2)
        d = std::uniform_int_distribution<std::size_t>(d_min, n - 1)(rng);
      std::size_t p = std::uniform_int_distribution<std::size_t>(k, n)(rng);
      if (!seen.insert({n, k, d, p}).second) continue;
      msr += d > k;
      rs_base += d == k;
      spread += p > k;
      GridEntry e{n, k, d, p, std::make_unique<Carousel>(n, k, d, p), 0};
      e.block_bytes = e.code->s() * kUnitBytes;
      out->push_back(std::move(e));
    }
    return out;
  }();
  return *entries;
}

// One encoded stripe per entry, seeded by its index.
struct Stripe {
  std::vector<std::uint8_t> data;
  std::vector<std::uint8_t> blob;
  std::vector<std::span<const std::uint8_t>> views;
};

Stripe encode_stripe(const GridEntry& e, std::uint32_t seed) {
  Stripe s;
  s.data = random_bytes(e.k * e.block_bytes, seed);
  s.blob.resize(e.n * e.block_bytes);
  std::vector<std::span<std::uint8_t>> blocks;
  for (std::size_t i = 0; i < e.n; ++i)
    blocks.emplace_back(s.blob.data() + i * e.block_bytes, e.block_bytes);
  e.code->encode(s.data, blocks);
  for (std::size_t i = 0; i < e.n; ++i)
    s.views.emplace_back(s.blob.data() + i * e.block_bytes, e.block_bytes);
  return s;
}

TEST(PropertyGrid, CoversTheParameterSpace) {
  const auto& g = grid();
  EXPECT_GE(g.size(), kMinConfigs);
  std::size_t msr = 0, rs_base = 0, spread = 0, full = 0;
  for (const auto& e : g) {
    ASSERT_LE(e.k, e.p);
    ASSERT_LE(e.p, e.n);
    ASSERT_TRUE(e.d == e.k || e.d >= std::max(e.k + 1, 2 * e.k - 2));
    ASSERT_LT(e.d, e.n);
    EXPECT_EQ(e.code->alpha(), e.d - e.k + 1);
    msr += e.d > e.k;
    rs_base += e.d == e.k;
    spread += e.p > e.k;
    full += e.p == e.n;
  }
  EXPECT_GE(msr, 5u);
  EXPECT_GE(rs_base, 5u);
  EXPECT_GE(spread, 5u);
}

TEST(PropertyGrid, AnyKBlocksRoundTrip) {
  std::mt19937 rng(101);
  std::uint32_t seed = 1000;
  for (const auto& e : grid()) {
    Stripe s = encode_stripe(e, seed++);
    // A random k-subset of the n blocks must reproduce the stripe (MDS).
    std::vector<std::size_t> ids(e.n);
    std::iota(ids.begin(), ids.end(), 0);
    std::shuffle(ids.begin(), ids.end(), rng);
    ids.resize(e.k);
    std::sort(ids.begin(), ids.end());
    std::vector<std::span<const std::uint8_t>> chosen;
    for (std::size_t id : ids) chosen.push_back(s.views[id]);
    std::vector<std::uint8_t> out(s.data.size());
    auto stats = e.code->decode(ids, chosen, out);
    EXPECT_EQ(out, s.data) << "(" << e.n << "," << e.k << "," << e.d << ","
                           << e.p << ")";
    EXPECT_EQ(stats.bytes_read, e.k * e.block_bytes);
    EXPECT_EQ(stats.sources, e.k);
  }
}

TEST(PropertyGrid, DataUnitsArePlacedVerbatim) {
  std::uint32_t seed = 2000;
  for (const auto& e : grid()) {
    Stripe s = encode_stripe(e, seed++);
    const std::size_t ub = e.block_bytes / e.code->s();
    std::size_t covered = 0;
    for (std::size_t i = 0; i < e.n; ++i) {
      auto [first, last] = e.code->message_slice(i);
      if (i >= e.p) {
        // Pure-parity blocks carry no verbatim data.
        EXPECT_EQ(first, last);
        EXPECT_EQ(e.code->data_extent_bytes(i, e.block_bytes), 0u);
        continue;
      }
      // §VI: block i's head is message units [first, last), in file order.
      const std::size_t extent = (last - first) * ub;
      EXPECT_EQ(e.code->data_extent_bytes(i, e.block_bytes), extent);
      EXPECT_TRUE(std::equal(s.views[i].begin(),
                             s.views[i].begin() + extent,
                             s.data.begin() + first * ub))
          << "block " << i << " of (" << e.n << "," << e.k << "," << e.d
          << "," << e.p << ")";
      covered += last - first;
    }
    // The p data extents tile the whole message, nothing missing or doubled.
    EXPECT_EQ(covered, e.code->message_units());
  }
}

TEST(PropertyGrid, RepairTrafficIsExactlyTheMsrOptimum) {
  std::mt19937 rng(202);
  std::uint32_t seed = 3000;
  auto& repair_counter = obs::MetricsRegistry::global().counter(
      obs::labeled("carousel_codec_repair_bytes_read_total", "code",
                   "carousel"));
  for (const auto& e : grid()) {
    Stripe s = encode_stripe(e, seed++);
    const std::size_t alpha = e.d - e.k + 1;
    const std::size_t failed =
        std::uniform_int_distribution<std::size_t>(0, e.n - 1)(rng);
    std::vector<std::size_t> helpers;
    for (std::size_t i = 0; i < e.n; ++i)
      if (i != failed) helpers.push_back(i);
    std::shuffle(helpers.begin(), helpers.end(), rng);
    helpers.resize(e.d);
    std::sort(helpers.begin(), helpers.end());

    const std::size_t chunk_bytes = e.code->helper_chunk_units() * kUnitBytes;
    std::vector<std::vector<std::uint8_t>> chunks(e.d);
    std::vector<std::span<const std::uint8_t>> chunk_views;
    for (std::size_t h = 0; h < e.d; ++h) {
      chunks[h].resize(chunk_bytes);
      e.code->helper_compute(helpers[h], failed, s.views[helpers[h]],
                             chunks[h]);
    }
    for (const auto& c : chunks) chunk_views.emplace_back(c);

    std::vector<std::uint8_t> rebuilt(e.block_bytes);
    const std::uint64_t counter_before = repair_counter.value();
    auto stats = e.code->newcomer_compute(failed, helpers, chunk_views,
                                          rebuilt);
    // The rebuilt block is bit-identical...
    EXPECT_TRUE(std::equal(rebuilt.begin(), rebuilt.end(),
                           s.views[failed].begin()))
        << "failed " << failed << " of (" << e.n << "," << e.k << "," << e.d
        << "," << e.p << ")";
    // ...at exactly d/(d-k+1) block sizes of helper traffic (Fig. 7), with
    // no rounding slack: alpha divides s by construction.
    EXPECT_EQ(stats.bytes_read * alpha, e.d * e.block_bytes);
    EXPECT_EQ(stats.bytes_read, e.d * chunk_bytes);
    EXPECT_EQ(stats.sources, e.d);
    // The codec's registry counter saw the same bytes — the number the
    // kMetrics dump and the bench snapshots report.
    EXPECT_EQ(repair_counter.value() - counter_before, stats.bytes_read);
  }
}

TEST(PropertyGrid, ParallelReadServesFromAnyPBlocks) {
  // §VII bonus property on the same grid: any p distinct blocks serve a
  // read, each contributing k/p of a block.
  std::mt19937 rng(303);
  std::uint32_t seed = 4000;
  for (const auto& e : grid()) {
    Stripe s = encode_stripe(e, seed++);
    std::vector<std::size_t> ids(e.n);
    std::iota(ids.begin(), ids.end(), 0);
    std::shuffle(ids.begin(), ids.end(), rng);
    ids.resize(e.p);
    std::sort(ids.begin(), ids.end());
    std::vector<std::span<const std::uint8_t>> chosen;
    for (std::size_t id : ids) chosen.push_back(s.views[id]);
    std::vector<std::uint8_t> out(s.data.size());
    auto stats = e.code->decode_parallel(ids, chosen, out);
    EXPECT_EQ(out, s.data) << "(" << e.n << "," << e.k << "," << e.d << ","
                           << e.p << ")";
    // The p contributors together ship k block sizes: k/p of a block each.
    EXPECT_EQ(stats.bytes_read, e.k * e.block_bytes)
        << "(" << e.n << "," << e.k << "," << e.d << "," << e.p << ")";
    EXPECT_EQ(stats.sources, e.p);
  }
}

TEST(PropertyGrid, StoreReadFileMatchesSequentialOracle) {
  // The concurrent, hedged store read path against a single-threaded
  // oracle, on live loopback servers: for every grid config and every
  // erasure count 1..n-k (data-carrying slots lost first, forcing §VII
  // stand-ins), read_file — including two calls racing each other — must
  // be bit-exact with a plain raw-client any-k decode.
  std::vector<std::unique_ptr<net::BlockServer>> servers;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 12; ++i) {
    servers.push_back(std::make_unique<net::BlockServer>());
    ports.push_back(servers.back()->port());
  }
  std::uint32_t file_id = 500;
  std::uint32_t seed = 5000;
  for (const auto& e : grid()) {
    ASSERT_LE(e.n, ports.size());
    const std::vector<std::uint16_t> fleet(ports.begin(),
                                           ports.begin() + e.n);
    net::StoreOptions o;
    o.hedge.enabled = true;  // hedges may fire; results must not change
    o.hedge.floor = std::chrono::milliseconds(5);
    o.hedge.initial = std::chrono::milliseconds(10);
    net::CarouselStore store(*e.code, fleet, e.block_bytes, o);
    const auto file = random_bytes(e.k * e.block_bytes, seed++);
    store.put_file(file_id, file);

    // The oracle never touches the store: raw whole blocks from the first
    // k healthy servers, decoded by the codec on this thread.
    auto reference = [&] {
      std::vector<std::size_t> ids;
      std::vector<std::vector<std::uint8_t>> blocks;
      for (std::size_t i = 0; i < e.n && ids.size() < e.k; ++i) {
        net::Client c(fleet[i]);
        auto b =
            c.get(net::BlockKey{file_id, 0, static_cast<std::uint32_t>(i)});
        if (!b || b->size() != e.block_bytes) continue;
        ids.push_back(i);
        blocks.push_back(std::move(*b));
      }
      std::vector<std::span<const std::uint8_t>> views;
      for (const auto& b : blocks) views.emplace_back(b);
      std::vector<std::uint8_t> out(file.size());
      e.code->decode(ids, views, out);
      return out;
    };

    EXPECT_EQ(store.read_file(file_id, file.size()), file)
        << "healthy (" << e.n << "," << e.k << "," << e.d << "," << e.p
        << ")";
    for (std::size_t erasures = 1; erasures <= e.n - e.k; ++erasures) {
      for (std::size_t i = 0; i < erasures; ++i)
        store.drop_block(file_id, 0, static_cast<std::uint32_t>(i));
      const auto oracle = reference();
      ASSERT_EQ(oracle, file)
          << erasures << " erasures of (" << e.n << "," << e.k << "," << e.d
          << "," << e.p << ")";
      // Two concurrent read_file calls race each other through the same
      // degraded stripe; workers only record, the main thread asserts.
      std::vector<std::uint8_t> got_a, got_b;
      std::thread ta([&] { got_a = store.read_file(file_id, file.size()); });
      std::thread tb([&] { got_b = store.read_file(file_id, file.size()); });
      ta.join();
      tb.join();
      EXPECT_EQ(got_a, oracle)
          << erasures << " erasures of (" << e.n << "," << e.k << "," << e.d
          << "," << e.p << ")";
      EXPECT_EQ(got_b, oracle)
          << erasures << " erasures of (" << e.n << "," << e.k << "," << e.d
          << "," << e.p << ")";
      // Restore for the next erasure count.  (Re-putting the same id is no
      // longer an option: put_file rejects duplicates with
      // DuplicateFileError.)
      for (std::size_t i = 0; i < erasures; ++i)
        store.repair_block(file_id, 0, static_cast<std::uint32_t>(i));
    }
    ++file_id;
  }
}

TEST(PropertyGrid, DomainPlacementHoldsTheCapThroughRehomeChurn) {
  // Failure-domain invariant over the grid, on live loopback servers: for
  // every config with n - k >= 2, label the fleet into the fewest racks
  // r >= 2 satisfying (r - 1) * (n - k) >= n — the regime where even a
  // whole rack's blocks fit in the other racks — and demand that no rack
  // ever holds more than n - k blocks of one stripe: after seeding, and
  // after a full rehome_server churn off a seeded victim (every one of
  // whose rehomes must succeed, by pigeonhole over the remaining racks).
  std::vector<std::unique_ptr<net::BlockServer>> servers;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 12; ++i) {
    servers.push_back(std::make_unique<net::BlockServer>());
    ports.push_back(servers.back()->port());
  }
  std::mt19937 rng(707);
  std::uint32_t file_id = 900;
  std::uint32_t seed = 9000;
  std::size_t exercised = 0;
  for (const auto& e : grid()) {
    if (e.n - e.k < 2) continue;  // cap 1 degenerates to one rack per server
    std::size_t racks = 2;
    while ((racks - 1) * (e.n - e.k) < e.n) ++racks;
    ASSERT_LE(e.n, ports.size());
    const std::vector<std::uint16_t> fleet(ports.begin(),
                                           ports.begin() + e.n);
    net::StoreOptions o;
    for (std::size_t i = 0; i < e.n; ++i) o.domains.push_back(i % racks);
    net::CarouselStore store(*e.code, fleet, e.block_bytes, o);
    const auto file = random_bytes(2 * e.k * e.block_bytes, seed++);
    store.put_file(file_id, file);

    auto max_per_rack = [&] {
      std::size_t worst = 0;
      for (const auto& [fid, info] : store.files())
        for (std::size_t s = 0; s < info.stripes; ++s) {
          std::vector<std::size_t> per(racks, 0);
          for (std::size_t i = 0; i < e.n; ++i)
            worst = std::max(worst,
                             ++per[store.domain_of(info.placement[s][i])]);
        }
      return worst;
    };
    EXPECT_LE(max_per_rack(), e.n - e.k)
        << "seed placement of (" << e.n << "," << e.k << ") over " << racks
        << " racks";

    // Full churn: a victim dies and every block it held re-homes.  The
    // candidate walk may stack blocks on survivors, but never past the cap.
    const std::size_t victim = rng() % e.n;
    servers[victim].reset();
    auto report = store.rehome_server(victim);
    EXPECT_EQ(report.failed, 0u)
        << "victim " << victim << " of (" << e.n << "," << e.k << ") over "
        << racks << " racks";
    EXPECT_TRUE(store.blocks_on(victim).empty());
    EXPECT_LE(max_per_rack(), e.n - e.k)
        << "post-churn placement of (" << e.n << "," << e.k << ") over "
        << racks << " racks";
    EXPECT_EQ(store.read_file(file_id, file.size()), file)
        << "degraded read after churn of (" << e.n << "," << e.k << ")";

    servers[victim] = std::make_unique<net::BlockServer>(ports[victim]);
    ++file_id;
    ++exercised;
  }
  EXPECT_GE(exercised, 10u);  // the grid must actually cover the regime
}

}  // namespace
}  // namespace carousel::codes
