#include <gtest/gtest.h>

#include "mapred/job.h"

namespace carousel::mapred {
namespace {

using hdfs::Cluster;
using hdfs::ClusterConfig;
using hdfs::DfsFile;
using hdfs::kMB;

ClusterConfig paper_cluster() {
  ClusterConfig c;
  c.nodes = 30;
  c.disk_read_bps = 200 * kMB;
  c.node_egress_bps = hdfs::mbps(1000);
  c.node_ingress_bps = hdfs::mbps(1000);
  return c;
}

constexpr double kFile = 6 * 512 * kMB;  // the paper's 3 GB benchmark file
constexpr double kBlock = 512 * kMB;

JobResult run(codes::CodeParams params, const Workload& w) {
  Cluster cluster(paper_cluster());
  auto f = DfsFile::coded(cluster, params, kFile, kBlock);
  return run_job(cluster, f, w, JobConfig{});
}

TEST(MapReduce, MapTaskCountEqualsDataCarryingBlocks) {
  EXPECT_EQ(run({12, 6, 6, 6}, wordcount()).map_tasks, 6u);
  EXPECT_EQ(run({12, 6, 10, 12}, wordcount()).map_tasks, 12u);
  EXPECT_EQ(run({12, 6, 10, 8}, wordcount()).map_tasks, 8u);
}

TEST(MapReduce, MapOnlyJobTimeEqualsSlowestTask) {
  Workload w = wordcount();
  w.map_output_ratio = 0;  // no reduce phase at all
  auto r = run({12, 6, 6, 6}, w);
  EXPECT_DOUBLE_EQ(r.reduce_avg_s, 0.0);
  EXPECT_NEAR(r.job_s, r.map_max_s, 1e-9);
}

TEST(MapReduce, MapTimeComposition) {
  // One wave, all local: duration = overhead + read + cpu, identical tasks.
  Workload w{.name = "unit",
             .map_cpu_s_per_mb = 0.01,
             .reduce_cpu_s_per_mb = 0,
             .map_output_ratio = 0,
             .task_overhead_s = 2.0};
  auto r = run({12, 6, 6, 6}, w);
  const double expect = 2.0 + 512.0 * kMB / (200 * kMB) + 0.01 * 512.0;
  EXPECT_NEAR(r.map_avg_s, expect, 1e-6);
  EXPECT_NEAR(r.map_max_s, expect, 1e-6);
}

TEST(MapReduce, CarouselHalvesMapWorkAtDoubleParallelism) {
  // p: k -> 2k halves per-task input; with zero overhead the map time halves.
  Workload w = wordcount();
  w.task_overhead_s = 0;
  auto rs = run({12, 6, 10, 6}, w);
  auto car = run({12, 6, 10, 12}, w);
  EXPECT_EQ(car.map_tasks, 2 * rs.map_tasks);
  EXPECT_NEAR(car.map_avg_s / rs.map_avg_s, 0.5, 1e-6);
}

TEST(MapReduce, JobTimeMonotoneInP) {
  // Fig. 10: job completion time decreases as p grows, for both workloads.
  for (const Workload& w : {terasort(), wordcount()}) {
    double prev = 1e99;
    for (std::size_t p : {6u, 8u, 10u, 12u}) {
      auto r = run({12, 6, 10, p}, w);
      EXPECT_LT(r.job_s, prev) << w.name << " p=" << p;
      prev = r.job_s;
    }
  }
}

TEST(MapReduce, ReplicationMatchesEquivalentCarousel) {
  // Paper Fig. 10: Carousel p = 6 tracks 1x replication, p = 12 tracks 2x.
  Workload w = wordcount();
  for (auto [p, reps] : {std::pair<std::size_t, std::size_t>{6, 1}, {12, 2}}) {
    Cluster c1(paper_cluster()), c2(paper_cluster());
    auto coded = DfsFile::coded(c1, {12, 6, 10, p}, kFile, kBlock);
    auto repl = DfsFile::replicated(c2, kFile, kBlock, reps);
    auto rc = run_job(c1, coded, w, JobConfig{});
    auto rr = run_job(c2, repl, w, JobConfig{});
    EXPECT_EQ(rc.map_tasks, rr.map_tasks);
    EXPECT_NEAR(rc.job_s, rr.job_s, rc.job_s * 0.02) << "p=" << p;
  }
}

TEST(MapReduce, SlotLimitsForceWaves) {
  // 3 nodes, 1 slot each, 6 map tasks of one block replica each: two waves.
  ClusterConfig cfg = paper_cluster();
  cfg.nodes = 3;
  Cluster cluster(cfg);
  auto f = DfsFile::replicated(cluster, 6 * 64 * kMB, 64 * kMB, 1);
  Workload w{.name = "unit",
             .map_cpu_s_per_mb = 0,
             .reduce_cpu_s_per_mb = 0,
             .map_output_ratio = 0,
             .task_overhead_s = 1.0};
  JobConfig jc;
  jc.map_slots_per_node = 1;
  auto r = run_job(cluster, f, w, jc);
  // Each task: 1 s overhead + 64/200 s read; two waves back to back.
  const double task = 1.0 + 64.0 / 200.0;
  EXPECT_NEAR(r.job_s, 2 * task, 1e-6);
}

TEST(MapReduce, ShuffleHeavyJobHasReducePhase) {
  auto r = run({12, 6, 6, 6}, terasort());
  EXPECT_GT(r.reduce_avg_s, 0.0);
  EXPECT_GT(r.job_s, r.map_max_s + r.reduce_avg_s * 0.5);
}

// One lost data-carrying block; returns {healthy, degraded} job results.
std::pair<JobResult, JobResult> degraded_pair(std::size_t p) {
  Cluster c1(paper_cluster()), c2(paper_cluster());
  auto healthy = DfsFile::coded(c1, {12, 6, 10, p}, kFile, kBlock);
  auto failed = DfsFile::coded(c2, {12, 6, 10, p}, kFile, kBlock);
  failed.fail_block_index(2);
  return {run_job(c1, healthy, wordcount(), JobConfig{}),
          run_job(c2, failed, wordcount(), JobConfig{})};
}

TEST(MapReduce, DegradedTaskFetchesKPieces) {
  // p == k = 6: the classic degraded map task — (k-1) whole remote blocks
  // plus decode make the straggler several times slower.
  auto [rh, rf] = degraded_pair(6);
  EXPECT_EQ(rf.map_tasks, rh.map_tasks);
  // 5 remote 512 MB fetches through 1 Gbps ingress: >= ~20 s extra.
  EXPECT_GT(rf.map_max_s, rh.map_max_s + 15.0);
  EXPECT_GT(rf.job_s, rh.job_s + 10.0);
}

TEST(MapReduce, CarouselDegradesMoreGracefully) {
  // Every degraded piece is k/p of a block, so the straggler's penalty
  // shrinks by p/k = 2x at p = 12 versus p = 6.
  auto [rh6, rf6] = degraded_pair(6);
  auto [rh12, rf12] = degraded_pair(12);
  const double penalty6 = rf6.map_max_s - rh6.map_max_s;
  const double penalty12 = rf12.map_max_s - rh12.map_max_s;
  EXPECT_GT(penalty12, 0.0);
  EXPECT_LT(penalty12, 0.6 * penalty6);
  EXPECT_LT(rf12.job_s, rf6.job_s);
}

TEST(MapReduce, UnrecoverableStripeStillRejected) {
  Cluster cluster(paper_cluster());
  auto f = DfsFile::coded(cluster, {12, 6, 6, 6}, kFile, kBlock);
  for (std::size_t i = 0; i < 7; ++i) f.fail_block_index(i);
  EXPECT_THROW(run_job(cluster, f, wordcount(), JobConfig{}),
               std::runtime_error);
}

TEST(SlotPool, GrantsQueuesAndHandsOverFifo) {
  SlotPool pool(2, 1);
  std::vector<int> ran;
  pool.acquire(0, [&] { ran.push_back(1); });
  pool.acquire(0, [&] { ran.push_back(2); });  // queued
  pool.acquire(0, [&] { ran.push_back(3); });  // queued
  pool.acquire(1, [&] { ran.push_back(4); });  // other node: immediate
  EXPECT_EQ(ran, (std::vector<int>{1, 4}));
  EXPECT_EQ(pool.free_slots(0), 0u);
  pool.release(0);  // hands the slot to task 2
  EXPECT_EQ(ran, (std::vector<int>{1, 4, 2}));
  pool.release(0);
  EXPECT_EQ(ran, (std::vector<int>{1, 4, 2, 3}));
  pool.release(0);
  EXPECT_EQ(pool.free_slots(0), 1u);
}

TEST(MapReduce, ConcurrentJobsShareSlots) {
  // Two identical jobs on a 6-node cluster with 1 slot per node: the second
  // job's tasks queue behind the first, roughly doubling its latency.
  ClusterConfig cfg = paper_cluster();
  cfg.nodes = 6;
  Cluster cluster(cfg);
  auto f1 = DfsFile::replicated(cluster, 6 * 64 * kMB, 64 * kMB, 1);
  auto f2 = DfsFile::replicated(cluster, 6 * 64 * kMB, 64 * kMB, 1);
  Workload w{.name = "unit",
             .map_cpu_s_per_mb = 0,
             .reduce_cpu_s_per_mb = 0,
             .map_output_ratio = 0,
             .task_overhead_s = 1.0};
  JobConfig jc;
  jc.map_slots_per_node = 1;
  SlotPool slots(cluster.nodes(), 1);
  JobResult r1, r2;
  schedule_job(cluster, f1, w, jc, 0.0, &slots, &r1);
  schedule_job(cluster, f2, w, jc, 0.0, &slots, &r2);
  cluster.simulation().run();
  const double task = 1.0 + 64.0 / 200.0;
  EXPECT_NEAR(r1.job_s, task, 1e-6);
  EXPECT_NEAR(r2.job_s, 2 * task, 1e-6);  // queued a full wave
  // Task *durations* exclude queueing: both jobs report one-task times.
  EXPECT_NEAR(r2.map_avg_s, task, 1e-6);
}

TEST(MapReduce, StaggeredJobsDontContendOnDisjointNodes) {
  ClusterConfig cfg = paper_cluster();
  Cluster cluster(cfg);
  // Two single-stripe files with placement offsets putting them on
  // disjoint node sets of the 30-node cluster.
  auto f1 = DfsFile::coded(cluster, {12, 6, 10, 12}, kFile, kBlock, 0);
  auto f2 = DfsFile::coded(cluster, {12, 6, 10, 12}, kFile, kBlock, 12);
  SlotPool slots(cluster.nodes(), 2);
  JobResult r1, r2;
  schedule_job(cluster, f1, wordcount(), JobConfig{}, 0.0, &slots, &r1);
  schedule_job(cluster, f2, wordcount(), JobConfig{}, 0.0, &slots, &r2);
  cluster.simulation().run();
  EXPECT_NEAR(r1.map_avg_s, r2.map_avg_s, 0.3);  // only shuffle interferes
}

TEST(MapReduce, PaperHeadlineSavings) {
  // The paper's headline numbers (Fig. 9): with (12,6,10,12) Carousel vs
  // (12,6) RS, map time drops ~46.8% (wordcount) / ~39.7% (terasort); job
  // time drops ~46.6% (wordcount) / ~15.9% (terasort).  The model is
  // calibrated to land within a few points of those.
  auto rs_wc = run({12, 6, 10, 6}, wordcount());
  auto ca_wc = run({12, 6, 10, 12}, wordcount());
  double map_saving_wc = 1 - ca_wc.map_avg_s / rs_wc.map_avg_s;
  double job_saving_wc = 1 - ca_wc.job_s / rs_wc.job_s;
  EXPECT_NEAR(map_saving_wc, 0.468, 0.06);
  EXPECT_NEAR(job_saving_wc, 0.466, 0.10);

  auto rs_ts = run({12, 6, 10, 6}, terasort());
  auto ca_ts = run({12, 6, 10, 12}, terasort());
  double map_saving_ts = 1 - ca_ts.map_avg_s / rs_ts.map_avg_s;
  double job_saving_ts = 1 - ca_ts.job_s / rs_ts.job_s;
  EXPECT_NEAR(map_saving_ts, 0.397, 0.06);
  EXPECT_NEAR(job_saving_ts, 0.159, 0.10);
}

}  // namespace
}  // namespace carousel::mapred
