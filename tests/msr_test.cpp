#include <gtest/gtest.h>

#include <algorithm>

#include "codes/msr.h"
#include "test_util.h"

namespace carousel::codes {
namespace {

using test::random_bytes;
using test::split_const_spans;
using test::split_spans;
using test::subsets;

// Encodes a random stripe and returns {data, blob}.
std::pair<std::vector<Byte>, std::vector<Byte>> make_stripe(
    const ProductMatrixMSR& msr, std::size_t unit_bytes) {
  const std::size_t w = msr.s() * unit_bytes;
  auto data = random_bytes(msr.k() * w, 7);
  std::vector<Byte> blob(msr.n() * w);
  msr.encode(data, split_spans(blob, msr.n()));
  return {std::move(data), std::move(blob)};
}

TEST(ProductMatrixMSR, RejectsRsRegimeAndGaps) {
  EXPECT_THROW(ProductMatrixMSR(6, 3, 3), std::invalid_argument);  // d == k
  EXPECT_THROW(ProductMatrixMSR(8, 4, 5), std::invalid_argument);  // gap
  EXPECT_NO_THROW(ProductMatrixMSR(8, 4, 6));                      // 2k-2
  EXPECT_NO_THROW(ProductMatrixMSR(8, 4, 7));                      // 2k-1
}

TEST(ProductMatrixMSR, GeometryMatchesPaper) {
  ProductMatrixMSR msr(12, 6, 10);  // the paper's Hadoop configuration
  EXPECT_EQ(msr.alpha(), 5u);       // d - k + 1
  EXPECT_EQ(msr.s(), 5u);
  EXPECT_DOUBLE_EQ(msr.params().repair_traffic_blocks(), 2.0);
}

TEST(ProductMatrixMSR, SystematicPrefixIsVerbatim) {
  ProductMatrixMSR msr(6, 3, 4);
  const std::size_t w = msr.s() * 11;
  auto [data, blob] = make_stripe(msr, 11);
  for (std::size_t i = 0; i < msr.k(); ++i)
    EXPECT_TRUE(std::equal(blob.begin() + i * w, blob.begin() + (i + 1) * w,
                           data.begin() + i * w))
        << "block " << i;
}

TEST(ProductMatrixMSR, MdsExhaustiveSmall) {
  for (auto [n, k, d] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{5, 3, 4},
        {6, 3, 4},
        {7, 4, 6} /* d=2k-2 */,
        {5, 2, 3} /* shortened */,
        {6, 3, 5} /* shortened */}) {
    ProductMatrixMSR msr(n, k, d);
    const std::size_t ub = 9;
    const std::size_t w = msr.s() * ub;
    auto [data, blob] = make_stripe(msr, ub);
    auto views = split_const_spans(blob, n);
    for (const auto& ids : subsets(n, k)) {
      std::vector<std::span<const Byte>> chosen;
      for (std::size_t id : ids) chosen.push_back(views[id]);
      std::vector<Byte> out(k * w);
      msr.decode(ids, chosen, out);
      ASSERT_EQ(out, data) << "(" << n << "," << k << "," << d << ")";
    }
  }
}

TEST(ProductMatrixMSR, RepairEveryBlockEveryHelperSetSmall) {
  ProductMatrixMSR msr(6, 3, 4);
  const std::size_t ub = 10;
  const std::size_t w = msr.s() * ub;
  auto [data, blob] = make_stripe(msr, ub);
  auto views = split_const_spans(blob, 6);
  for (std::size_t failed = 0; failed < 6; ++failed) {
    for (const auto& all : subsets(6, msr.d() + 1)) {
      // Build helper sets of size d avoiding `failed`.
      std::vector<std::size_t> helpers;
      for (std::size_t id : all)
        if (id != failed) helpers.push_back(id);
      if (helpers.size() != msr.d()) continue;
      std::vector<std::vector<Byte>> chunk_store;
      std::vector<std::span<const Byte>> chunks;
      for (std::size_t h : helpers) {
        chunk_store.emplace_back(ub);
        msr.helper_compute(h, failed, views[h], chunk_store.back());
      }
      for (auto& c : chunk_store) chunks.emplace_back(c);
      std::vector<Byte> rebuilt(w);
      auto stats = msr.newcomer_compute(failed, helpers, chunks, rebuilt);
      ASSERT_TRUE(std::equal(rebuilt.begin(), rebuilt.end(),
                             views[failed].begin()))
          << "failed=" << failed;
      // Optimal repair traffic: d/(d-k+1) = 2 block sizes here.
      EXPECT_EQ(stats.bytes_read, msr.d() * ub);
      EXPECT_EQ(stats.bytes_read * msr.alpha(), msr.d() * w / 1);
    }
  }
}

TEST(ProductMatrixMSR, RepairTrafficIsOptimalFraction) {
  // Traffic in block sizes must equal d/(d-k+1) exactly.
  for (auto [n, k, d] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{12, 6, 10},
        {8, 4, 7},
        {10, 5, 9}}) {
    ProductMatrixMSR msr(n, k, d);
    const std::size_t ub = 4;
    const std::size_t w = msr.s() * ub;
    auto [data, blob] = make_stripe(msr, ub);
    auto views = split_const_spans(blob, n);
    std::vector<std::size_t> helpers;
    for (std::size_t h = 1; h <= d; ++h) helpers.push_back(h);
    std::vector<std::vector<Byte>> chunk_store;
    std::vector<std::span<const Byte>> chunks;
    for (std::size_t h : helpers) {
      chunk_store.emplace_back(ub);
      msr.helper_compute(h, 0, views[h], chunk_store.back());
    }
    for (auto& c : chunk_store) chunks.emplace_back(c);
    std::vector<Byte> rebuilt(w);
    auto stats = msr.newcomer_compute(0, helpers, chunks, rebuilt);
    EXPECT_TRUE(std::equal(rebuilt.begin(), rebuilt.end(), views[0].begin()));
    double traffic_blocks = double(stats.bytes_read) / double(w);
    EXPECT_DOUBLE_EQ(traffic_blocks, msr.params().repair_traffic_blocks());
    // And strictly less than RS's k block sizes whenever d > k.
    EXPECT_LT(traffic_blocks, double(k));
  }
}

TEST(ProductMatrixMSR, ShortenedCodeRepairsParityBlocks) {
  // Shortening drops systematic nodes; parity repair must still work.
  ProductMatrixMSR msr(8, 3, 6);  // i = d-2k+2 = 2 shortened nodes
  const std::size_t ub = 8;
  const std::size_t w = msr.s() * ub;
  auto [data, blob] = make_stripe(msr, ub);
  auto views = split_const_spans(blob, 8);
  for (std::size_t failed : {std::size_t{0}, std::size_t{4}, std::size_t{7}}) {
    std::vector<std::size_t> helpers;
    for (std::size_t h = 0; h < 8 && helpers.size() < msr.d(); ++h)
      if (h != failed) helpers.push_back(h);
    std::vector<std::vector<Byte>> chunk_store;
    std::vector<std::span<const Byte>> chunks;
    for (std::size_t h : helpers) {
      chunk_store.emplace_back(ub);
      msr.helper_compute(h, failed, views[h], chunk_store.back());
    }
    for (auto& c : chunk_store) chunks.emplace_back(c);
    std::vector<Byte> rebuilt(w);
    msr.newcomer_compute(failed, helpers, chunks, rebuilt);
    EXPECT_TRUE(
        std::equal(rebuilt.begin(), rebuilt.end(), views[failed].begin()))
        << "failed=" << failed;
  }
}

TEST(ProductMatrixMSR, HelperValidation) {
  ProductMatrixMSR msr(6, 3, 4);
  std::vector<Byte> block(msr.s() * 4), chunk(4);
  EXPECT_THROW(msr.helper_compute(2, 2, block, chunk), std::invalid_argument);
  std::vector<Byte> bad_chunk(5);
  EXPECT_THROW(msr.helper_compute(1, 2, block, bad_chunk),
               std::invalid_argument);
  std::vector<std::size_t> dup_helpers = {1, 1, 3, 4};
  EXPECT_THROW(msr.repair_combiner(0, dup_helpers), std::invalid_argument);
  std::vector<std::size_t> with_failed = {0, 1, 2, 3};
  EXPECT_THROW(msr.repair_combiner(0, with_failed), std::invalid_argument);
}

TEST(ProductMatrixMSR, LambdasDistinctAndPhiWellFormed) {
  ProductMatrixMSR msr(20, 10, 19);  // the paper's largest Fig. 6 point
  std::vector<Byte> lambdas;
  for (std::size_t i = 0; i < msr.n(); ++i) {
    EXPECT_EQ(msr.phi(i).size(), msr.alpha());
    lambdas.push_back(msr.lambda(i));
  }
  std::sort(lambdas.begin(), lambdas.end());
  EXPECT_EQ(std::adjacent_find(lambdas.begin(), lambdas.end()), lambdas.end())
      << "lambda values must be pairwise distinct";
}

TEST(ProductMatrixMSR, LargeConfigRoundTrip) {
  // Fig. 6 uses up to (20, 10, 19); verify decode on a sampled subset.
  ProductMatrixMSR msr(20, 10, 19);
  const std::size_t ub = 2;
  const std::size_t w = msr.s() * ub;
  auto [data, blob] = make_stripe(msr, ub);
  auto views = split_const_spans(blob, 20);
  std::vector<std::size_t> ids = {1, 3, 5, 7, 9, 11, 13, 15, 17, 19};
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t id : ids) chosen.push_back(views[id]);
  std::vector<Byte> out(msr.k() * w);
  msr.decode(ids, chosen, out);
  EXPECT_EQ(out, data);
}

// Property sweep: shape invariants across the supported (n,k,d) grid.
class MsrGrid
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MsrGrid, EncodeDecodeRepairRoundTrip) {
  auto [n, k, d] = GetParam();
  ProductMatrixMSR msr(n, k, d);
  const std::size_t ub = 6;
  const std::size_t w = msr.s() * ub;
  auto [data, blob] = make_stripe(msr, ub);
  auto views = split_const_spans(blob, n);

  // Decode from the k highest-indexed blocks (worst case for shortening).
  std::vector<std::size_t> ids;
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t id = n - k; id < static_cast<std::size_t>(n); ++id) {
    ids.push_back(id);
    chosen.push_back(views[id]);
  }
  std::vector<Byte> out(k * w);
  msr.decode(ids, chosen, out);
  EXPECT_EQ(out, data);

  // Repair block 0 from the last d blocks.
  std::vector<std::size_t> helpers;
  for (std::size_t h = n - d; h < static_cast<std::size_t>(n); ++h)
    helpers.push_back(h);
  std::vector<std::vector<Byte>> chunk_store;
  std::vector<std::span<const Byte>> chunks;
  for (std::size_t h : helpers) {
    chunk_store.emplace_back(ub);
    msr.helper_compute(h, 0, views[h], chunk_store.back());
  }
  for (auto& c : chunk_store) chunks.emplace_back(c);
  std::vector<Byte> rebuilt(w);
  msr.newcomer_compute(0, helpers, chunks, rebuilt);
  EXPECT_TRUE(std::equal(rebuilt.begin(), rebuilt.end(), views[0].begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MsrGrid,
    ::testing::Values(std::tuple{4, 2, 3}, std::tuple{6, 2, 3},
                      std::tuple{6, 3, 4}, std::tuple{6, 3, 5},
                      std::tuple{8, 4, 6}, std::tuple{8, 4, 7},
                      std::tuple{10, 4, 8}, std::tuple{12, 6, 10},
                      std::tuple{12, 6, 11}, std::tuple{16, 8, 15},
                      std::tuple{20, 10, 19}));

}  // namespace
}  // namespace carousel::codes
