// Observability-layer tests: registry semantics under concurrency, histogram
// bucket boundaries, snapshot isolation, trace spans, and the kMetrics wire
// op end to end against a live BlockServer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/block_server.h"
#include "net/client.h"
#include "net/errors.h"
#include "net/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace carousel::obs {
namespace {

TEST(Counter, ConcurrentIncrementsNeverLoseUpdates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c_total");
  constexpr int kThreads = 8, kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kIncs);
  c.inc(58);
  EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kIncs + 58);
}

TEST(Gauge, ConcurrentAddsSumExactly) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("g");
  constexpr int kThreads = 8, kAdds = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&g] {
      for (int i = 0; i < kAdds; ++i) g.add(1.0);
    });
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g.value(), double(kThreads) * kAdds);
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST(HistogramTest, BucketBoundariesUseLeSemantics) {
  // Bounds are inclusive upper limits (Prometheus "le"): a value equal to a
  // bound lands in that bound's bucket, values past the last bound in +inf.
  Histogram h({1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 5.0, 7.0}) h.observe(v);
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bucket(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(h.bucket(1), 2u);  // 1.5, 2.0
  EXPECT_EQ(h.bucket(2), 1u);  // 5.0
  EXPECT_EQ(h.bucket(3), 1u);  // 7.0 -> +inf
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 17.0);
}

TEST(HistogramTest, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramTest, EmptyBoundsGetDefaultLatencyLadder) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_seconds");
  EXPECT_EQ(h.bounds().size(),
            Histogram::latency_buckets_seconds().size());
  EXPECT_DOUBLE_EQ(h.bounds().front(), 1e-6);
  EXPECT_DOUBLE_EQ(h.bounds().back(), 10.0);
}

TEST(HistogramTest, ConcurrentObservesConserveCount) {
  Histogram h({0.5});
  constexpr int kThreads = 8, kObs = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) h.observe(t % 2 ? 0.25 : 0.75);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kObs);
  EXPECT_EQ(h.bucket(0) + h.bucket(1), h.count());
  EXPECT_EQ(h.bucket(0), std::uint64_t(kThreads) / 2 * kObs);
}

TEST(Registry, InstrumentReferencesAreStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("same");
  Counter& b = reg.counter("same");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = reg.histogram("h", std::vector<double>{1.0});
  Histogram& h2 = reg.histogram("h", std::vector<double>{9.0, 10.0});
  EXPECT_EQ(&h1, &h2);  // bounds consulted only on first creation
  ASSERT_EQ(h2.bounds().size(), 1u);
}

TEST(Registry, SnapshotIsIsolatedFromLaterWrites) {
  MetricsRegistry reg;
  Counter& c = reg.counter("writes_total");
  Histogram& h = reg.histogram("h", std::vector<double>{1.0});
  c.inc(5);
  h.observe(0.5);
  Snapshot snap = reg.snapshot();
  // Mutate heavily after the snapshot: it must not move.
  c.inc(1000);
  for (int i = 0; i < 100; ++i) h.observe(2.0);
  reg.counter("appears_later_total").inc();
  EXPECT_EQ(snap.counters.at("writes_total"), 5u);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  EXPECT_EQ(snap.counters.count("appears_later_total"), 0u);
  // And a fresh snapshot sees everything.
  Snapshot now = reg.snapshot();
  EXPECT_EQ(now.counters.at("writes_total"), 1005u);
  EXPECT_EQ(now.histograms.at("h").count, 101u);
  EXPECT_EQ(now.counters.at("appears_later_total"), 1u);
}

TEST(Registry, SnapshotAndRenderNeverHoldTheRegistryLock) {
  // The snapshot-then-render contract (DESIGN.md §11): snapshot() copies
  // under the registry mutex and returns a detached value, so Prometheus/
  // JSON rendering — and any caller code consuming the snapshot — runs
  // with no registry lock held.  An exporter must never be able to stall
  // a request path mid-scrape.
  MetricsRegistry reg;
  reg.counter("scrape_total").inc(3);
  reg.histogram("scrape_seconds").observe(0.25);
  ASSERT_FALSE(reg.lock_held_by_current_thread());
  Snapshot snap = reg.snapshot();
  EXPECT_FALSE(reg.lock_held_by_current_thread());
  std::string prom = reg.render_prometheus();
  EXPECT_FALSE(reg.lock_held_by_current_thread());
  std::string json = reg.render_json();
  EXPECT_FALSE(reg.lock_held_by_current_thread());
  EXPECT_NE(prom.find("scrape_total 3"), std::string::npos);
  EXPECT_NE(json.find("scrape_total"), std::string::npos);
  EXPECT_EQ(snap.counters.at("scrape_total"), 3u);
}

TEST(Registry, RenderingRacesMutationWithoutTearing) {
  // Scrapes and instrument traffic run concurrently: renders happen on a
  // detached copy, so heavy mutation alongside must neither deadlock nor
  // produce a half-written exposition (TSan-visible if the copy leaked a
  // reference into the registry's maps).
  MetricsRegistry reg;
  Counter& c = reg.counter("race_total");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      c.inc();
      reg.gauge("race_gauge").add(1.0);
    }
  });
  for (int i = 0; i < 200; ++i) {
    std::string prom = reg.render_prometheus();
    EXPECT_NE(prom.find("race_total"), std::string::npos);
    Snapshot snap = reg.snapshot();
    EXPECT_TRUE(snap.counters.contains("race_total"));
  }
  stop.store(true);
  writer.join();
  EXPECT_FALSE(reg.lock_held_by_current_thread());
}

TEST(Registry, LabeledBuildsAndMergesBraceSuffixes) {
  EXPECT_EQ(labeled("a", "k", "v"), "a{k=\"v\"}");
  EXPECT_EQ(labeled("a{x=\"1\"}", "k", "v"), "a{x=\"1\",k=\"v\"}");
}

// Runtime twin of the tools/check_invariants.py metric-naming lint: names in
// the carousel_ namespace must follow the documented grammar the moment they
// register, so a dynamically composed bad name cannot pollute the exposition.
TEST(Registry, CarouselNamespaceNamesMustFollowTheGrammar) {
  MetricsRegistry reg;
  EXPECT_NO_THROW(reg.counter("carousel_server_requests_total"));
  EXPECT_NO_THROW(reg.counter(
      labeled("carousel_gf_kernel_calls_total", "backend", "gfni")));
  EXPECT_NO_THROW(reg.gauge("carousel_server_blocks"));
  EXPECT_NO_THROW(reg.histogram("carousel_store_put_seconds"));

  // Counters must end _total, histograms _seconds.
  EXPECT_THROW(reg.counter("carousel_server_requests"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("carousel_store_put_ms"), std::invalid_argument);
  // Lowercase words, at least carousel_<subsystem>_<what>.
  EXPECT_THROW(reg.counter("carousel_Server_requests_total"),
               std::invalid_argument);
  EXPECT_THROW(reg.counter("carousel_total"), std::invalid_argument);
  EXPECT_THROW(reg.counter("carousel_a__b_total"), std::invalid_argument);
  // Label keys are lowercase words, values double-quoted.
  EXPECT_THROW(reg.counter("carousel_server_requests_total{Op=\"get\"}"),
               std::invalid_argument);
  EXPECT_THROW(reg.counter("carousel_server_requests_total{op=get}"),
               std::invalid_argument);

  // A rejected name must not leave a half-registered instrument behind.
  EXPECT_THROW(reg.counter("carousel_server_requests"), std::invalid_argument);
  EXPECT_EQ(reg.snapshot().counters.count("carousel_server_requests"), 0u);

  // Names outside the carousel_ namespace (tests, scratch registries) are
  // exempt.
  EXPECT_NO_THROW(reg.counter("short_total"));
  EXPECT_NO_THROW(reg.gauge("g"));
  EXPECT_NO_THROW(reg.histogram("h"));
}

TEST(Registry, PrometheusRenderingIsCumulativeAndLabeled) {
  MetricsRegistry reg;
  reg.counter("jobs_total").inc(3);
  reg.gauge("depth").set(1.5);
  Histogram& h =
      reg.histogram("op_seconds{op=\"get\"}", std::vector<double>{1.0, 2.0});
  h.observe(0.5);
  h.observe(3.0);
  std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("jobs_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("depth 1.5\n"), std::string::npos);
  // Histogram series: cumulative buckets, le merged into the label group.
  EXPECT_NE(text.find("op_seconds_bucket{op=\"get\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("op_seconds_bucket{op=\"get\",le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("op_seconds_bucket{op=\"get\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("op_seconds_sum{op=\"get\"} 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("op_seconds_count{op=\"get\"} 2\n"), std::string::npos);
}

TEST(Registry, JsonRenderingHasAllThreeSections) {
  MetricsRegistry reg;
  reg.counter("c_total").inc(7);
  reg.gauge("g").set(2.0);
  reg.histogram("h", std::vector<double>{1.0}).observe(0.5);
  std::string json = reg.render_json();
  EXPECT_NE(json.find("\"counters\":{\"c_total\":7}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"g\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"h\":{\"bounds\":[1],\"buckets\":[1,0],\"count\":1"),
            std::string::npos);
}

TEST(Trace, ScopedTimerObservesOnceIntoHistogram) {
  Histogram h({1e-9, 1.0});
  {
    ScopedTimer timer(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    double s = timer.stop();
    EXPECT_GE(s, 0.009);
    EXPECT_LT(s, 5.0);
  }  // stop() already observed; destructor must not observe again
  EXPECT_EQ(h.count(), 1u);
  { ScopedTimer timer(h); }  // destructor path
  EXPECT_EQ(h.count(), 2u);
}

TEST(Trace, RingKeepsNewestRecordsOldestFirst) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i)
    ring.record("op" + std::to_string(i), 0.001 * i, std::uint64_t(i));
  EXPECT_EQ(ring.total_recorded(), 10u);
  auto records = ring.records();
  ASSERT_EQ(records.size(), 4u);  // only the newest `capacity` survive
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].name, "op" + std::to_string(6 + i));
    EXPECT_EQ(records[i].seq, 6 + i);
  }
  ring.clear();
  EXPECT_TRUE(ring.records().empty());
  EXPECT_EQ(ring.total_recorded(), 10u);  // history count survives clear
}

TEST(Trace, SpanFeedsHistogramAndRingWithBytes) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("span_seconds");
  TraceRing ring(8);
  {
    TraceSpan span("repair", &h, &ring);
    span.add_bytes(1024);
    span.add_bytes(512);
  }
  EXPECT_EQ(h.count(), 1u);
  auto records = ring.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "repair");
  EXPECT_EQ(records[0].bytes, 1536u);
  EXPECT_GE(records[0].seconds, 0.0);
}

// ---- kMetrics wire op against a live server --------------------------------

TEST(MetricsWireOp, ServerExposesPerOpTelemetry) {
  net::BlockServer server;
  net::Client client(server.port());
  net::BlockKey key{1, 0, 0};
  auto data = test::random_bytes(2048, 61);
  client.ping();
  client.put(key, data);
  ASSERT_TRUE(client.get(key).has_value());
  ASSERT_TRUE(client.get(key).has_value());

  std::string text = client.metrics_text();
  // Request counters, one series per op.
  EXPECT_NE(text.find("carousel_server_requests_total{op=\"ping\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("carousel_server_requests_total{op=\"put\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("carousel_server_requests_total{op=\"get\"} 2\n"),
            std::string::npos);
  // Latency histograms render as Prometheus series with merged le labels.
  EXPECT_NE(text.find("carousel_server_op_seconds_bucket{op=\"put\",le=\""),
            std::string::npos);
  EXPECT_NE(text.find("carousel_server_op_seconds_count{op=\"put\"} 1\n"),
            std::string::npos);
  // Storage gauges track the put.
  EXPECT_NE(text.find("carousel_server_blocks 1\n"), std::string::npos);
  EXPECT_NE(text.find("carousel_server_stored_bytes 2048\n"),
            std::string::npos);
  // The dump appends the process-global registry: client-side mirrors of the
  // very ops above are part of the same document.
  EXPECT_NE(text.find("carousel_client_op_seconds_bucket{op=\"put\",le=\""),
            std::string::npos);
}

TEST(MetricsWireOp, MetricsCountsItselfAndTracksDeletes) {
  net::BlockServer server;
  net::Client client(server.port());
  net::BlockKey key{2, 0, 0};
  client.put(key, test::random_bytes(512, 62));
  ASSERT_TRUE(client.remove(key));
  std::string first = client.metrics_text();
  EXPECT_NE(first.find("carousel_server_blocks 0\n"), std::string::npos);
  EXPECT_NE(first.find("carousel_server_stored_bytes 0\n"),
            std::string::npos);
  EXPECT_NE(first.find("carousel_server_requests_total{op=\"delete\"} 1\n"),
            std::string::npos);
  // Requests are counted before they are handled, so a METRICS dump counts
  // itself — and the next one sees both.
  EXPECT_NE(first.find("carousel_server_requests_total{op=\"metrics\"} 1\n"),
            std::string::npos);
  std::string second = client.metrics_text();
  EXPECT_NE(second.find("carousel_server_requests_total{op=\"metrics\"} 2\n"),
            std::string::npos);
}

TEST(MetricsWireOp, FaultInjectionHitsAreCounted) {
  net::BlockServer server;
  auto plan = std::make_shared<net::FaultPlan>(1);
  plan->add({.action = net::FaultAction::kRefuse,
             .op = net::Op::kPing,
             .max_hits = 2});
  server.set_fault_plan(plan);
  net::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff = std::chrono::milliseconds(1);
  net::Client client(server.port(), policy);
  EXPECT_THROW(client.ping(), net::ServerError);
  EXPECT_THROW(client.ping(), net::ServerError);
  client.ping();  // rule exhausted
  std::string text = client.metrics_text();
  EXPECT_NE(
      text.find("carousel_server_fault_injections_total{action=\"refuse\"} 2\n"),
      std::string::npos);
}

TEST(MetricsWireOp, EachServerHasIsolatedRegistry) {
  net::BlockServer a, b;
  net::Client ca(a.port()), cb(b.port());
  ca.put(net::BlockKey{3, 0, 0}, test::random_bytes(64, 63));
  cb.ping();
  std::string ta = ca.metrics_text(), tb = cb.metrics_text();
  EXPECT_NE(ta.find("carousel_server_requests_total{op=\"put\"} 1\n"),
            std::string::npos);
  EXPECT_NE(tb.find("carousel_server_requests_total{op=\"put\"} 0\n"),
            std::string::npos);
  EXPECT_EQ(a.metrics().snapshot().gauges.at("carousel_server_blocks"), 1.0);
  EXPECT_EQ(b.metrics().snapshot().gauges.at("carousel_server_blocks"), 0.0);
}

}  // namespace
}  // namespace carousel::obs
