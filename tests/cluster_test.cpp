// Self-healing cluster tests: failure detection (HealthMonitor), explicit
// placement with runtime spares, re-homing dead servers' blocks through the
// MSR repair path, whole-operation budgets, and graceful server drain.
//
// The acceptance scenario mirrors the maintenance loop of a production
// deployment: kill a server, let the detector declare it dead, let the
// scrubber regenerate every affected block onto a spare — asserting the
// wire traffic per healed block is exactly the paper's d/(d-k+1) block
// sizes — and read everything back bit-exact with the server still gone.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>

#include "codes/carousel.h"
#include "net/block_server.h"
#include "net/client.h"
#include "net/cluster.h"
#include "net/errors.h"
#include "net/fault.h"
#include "net/scrubber.h"
#include "net/store.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace carousel::net {
namespace {

namespace fs = std::filesystem;
using codes::Byte;
using test::random_bytes;

RetryPolicy fast_policy() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.io_timeout = std::chrono::milliseconds(250);
  p.base_backoff = std::chrono::milliseconds(2);
  p.max_backoff = std::chrono::milliseconds(20);
  p.op_deadline = std::chrono::milliseconds(3000);
  return p;
}

HealthMonitor::Options fast_monitor() {
  HealthMonitor::Options o;
  o.interval = std::chrono::milliseconds(20);
  o.suspect_after = 1;
  o.dead_after = 2;
  o.revive_after = 2;
  o.probe_policy = fast_policy();
  o.probe_policy.max_attempts = 2;
  o.probe_policy.op_deadline = std::chrono::milliseconds(1000);
  return o;
}

/// Fleet of RAM block servers whose members can be killed and revived on
/// the same port mid-test.
class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 12; ++i)
      servers_.push_back(std::make_unique<BlockServer>());
    for (const auto& s : servers_) ports_.push_back(s->port());
  }

  void kill(std::size_t i) { servers_[i].reset(); }
  void revive(std::size_t i) {
    servers_[i] = std::make_unique<BlockServer>(ports_[i]);
  }

  StoreOptions opts() {
    StoreOptions o;
    o.policy = fast_policy();
    o.registry = &registry_;
    return o;
  }

  std::uint64_t counter(const std::string& name) {
    auto snap = registry_.snapshot();
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  }

  double gauge(const std::string& name) {
    auto snap = registry_.snapshot();
    auto it = snap.gauges.find(name);
    return it == snap.gauges.end() ? -1.0 : it->second;
  }

  obs::MetricsRegistry registry_;
  std::vector<std::unique_ptr<BlockServer>> servers_;
  std::vector<std::uint16_t> ports_;
};

// ---- Failure detection ----------------------------------------------------

TEST(ServerStateNames, CoverEveryState) {
  EXPECT_STREQ(server_state_name(ServerState::kAlive), "alive");
  EXPECT_STREQ(server_state_name(ServerState::kSuspect), "suspect");
  EXPECT_STREQ(server_state_name(ServerState::kDead), "dead");
  EXPECT_STREQ(server_state_name(ServerState::kUnknown), "unknown");
}

// Regression: state_of() used to answer kAlive for servers the monitor had
// never probed, so a caller could mistake "no verdict yet" for "probed and
// healthy" — and a scrubber consulting a fresh monitor would have trusted
// a home no probe ever reached.  Never-tracked servers answer kUnknown.
TEST_F(ClusterTest, StateOfNeverTrackedServerIsUnknownNotAlive) {
  codes::Carousel code(12, 6, 10, 12);
  CarouselStore store(code, ports_, code.s() * 4, opts());
  HealthMonitor monitor(store, fast_monitor());
  EXPECT_EQ(monitor.state_of(0), ServerState::kUnknown);  // not probed yet
  EXPECT_EQ(monitor.state_of(999), ServerState::kUnknown);
  monitor.probe_once();
  EXPECT_EQ(monitor.state_of(0), ServerState::kAlive);
  EXPECT_EQ(monitor.state_of(999), ServerState::kUnknown);  // never tracked
}

TEST_F(ClusterTest, MonitorRejectsNonsenseThresholdsAtConstruction) {
  codes::Carousel code(12, 6, 10, 12);
  CarouselStore store(code, ports_, code.s() * 4, opts());
  auto bad = fast_monitor();
  bad.interval = std::chrono::milliseconds(0);
  EXPECT_THROW(HealthMonitor(store, bad), std::invalid_argument);
  bad = fast_monitor();
  bad.suspect_after = 0;
  EXPECT_THROW(HealthMonitor(store, bad), std::invalid_argument);
  bad = fast_monitor();
  bad.suspect_after = 3;
  bad.dead_after = 2;  // would convict before suspecting
  EXPECT_THROW(HealthMonitor(store, bad), std::invalid_argument);
  bad = fast_monitor();
  bad.revive_after = 0;  // would disable flap damping entirely
  EXPECT_THROW(HealthMonitor(store, bad), std::invalid_argument);
  HealthMonitor ok(store, fast_monitor());  // the good knobs still stand
  ok.probe_once();
  EXPECT_EQ(ok.state_of(0), ServerState::kAlive);
}

TEST_F(ClusterTest, StoreRejectsNonsenseRobustnessKnobsAtConstruction) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 4;
  auto bad = opts();
  bad.op_budget = std::chrono::milliseconds(-1);
  EXPECT_THROW(CarouselStore(code, ports_, block, bad),
               std::invalid_argument);
  bad = opts();
  bad.hedge.percentile = 1.0;  // a max, not a quantile
  EXPECT_THROW(CarouselStore(code, ports_, block, bad),
               std::invalid_argument);
  bad = opts();
  bad.hedge.percentile = 0.4;  // below the median hedges the common case
  EXPECT_THROW(CarouselStore(code, ports_, block, bad),
               std::invalid_argument);
  bad = opts();
  bad.hedge.min_samples = 0;  // a zero-sample quantile is undefined
  EXPECT_THROW(CarouselStore(code, ports_, block, bad),
               std::invalid_argument);
  bad = opts();
  bad.hedge.floor = std::chrono::milliseconds(-5);
  EXPECT_THROW(CarouselStore(code, ports_, block, bad),
               std::invalid_argument);

  // The same validation guards the runtime path.
  CarouselStore store(code, ports_, block, opts());
  HedgePolicy hp;
  hp.percentile = 1.5;
  EXPECT_THROW(store.set_hedge_policy(hp), std::invalid_argument);
}

// ---- Failure domains ------------------------------------------------------

TEST_F(ClusterTest, StoreRejectsMismatchedOrUnsatisfiableDomainLabels) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 4;
  auto o = opts();
  o.domains = {0, 1};  // must label every base server or none
  EXPECT_THROW(CarouselStore(code, ports_, block, o), std::invalid_argument);
  o = opts();
  o.domains.assign(12, 7);  // one rack: 1 * (n-k) = 6 < n, nothing fits
  EXPECT_THROW(CarouselStore(code, ports_, block, o), std::invalid_argument);
}

TEST_F(ClusterTest, DefaultStoreGivesEachServerItsOwnDomain) {
  codes::Carousel code(12, 6, 10, 12);
  CarouselStore store(code, ports_, code.s() * 4, opts());
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(store.domain_of(i), i);
  BlockServer spare;
  const std::size_t id = store.add_server(spare.port());
  EXPECT_EQ(store.domain_of(id), id);  // unlabeled spare: its own domain
  EXPECT_THROW(store.domain_of(99), std::out_of_range);
}

TEST_F(ClusterTest, DomainSeedNeverStacksARackPastTheCapAndReadsSurvive) {
  // Two racks over twelve servers and n - k = 6: satisfiable exactly, so
  // the seed must land 6-and-6 — losing either whole rack erases exactly
  // n - k blocks per stripe and every byte stays readable.
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 16;
  auto o = opts();
  for (std::size_t i = 0; i < 12; ++i) o.domains.push_back(i % 2);
  CarouselStore store(code, ports_, block, o);
  auto file = random_bytes(2 * code.k() * block, 67);  // two stripes
  store.put_file(1, file);
  for (std::uint32_t s = 0; s < 2; ++s) {
    std::size_t rack0 = 0;
    for (std::uint32_t i = 0; i < code.n(); ++i)
      rack0 += store.domain_of(store.placement_of(1, s, i)) == 0;
    EXPECT_EQ(rack0, code.n() - code.k());
  }
  for (std::size_t i = 0; i < 12; i += 2) kill(i);  // all of rack 0
  EXPECT_EQ(store.read_file(1, file.size()), file);
}

TEST_F(ClusterTest, RehomeSkipsFullDomainsAndStacksWithinTheCap) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 16;
  auto o = opts();
  for (std::size_t i = 0; i < 12; ++i) o.domains.push_back(i % 2);
  CarouselStore store(code, ports_, block, o);
  auto file = random_bytes(code.k() * block, 71);
  store.put_file(1, file);

  // A spare in rack 1 cannot take rack-0 victims: rack 1 already holds
  // n - k blocks of the stripe.  The rehome must stack on a rack-0
  // survivor instead — the domain, not the box, is the failure unit.
  BlockServer full_rack_spare;
  const std::size_t spare_id = store.add_server(full_rack_spare.port(), 1);
  kill(0);
  store.rehome_block(1, 0, 0);
  const std::size_t target = store.placement_of(1, 0, 0);
  EXPECT_NE(target, spare_id);
  EXPECT_EQ(store.domain_of(target), 0u);  // stacked inside rack 0
  EXPECT_EQ(full_rack_spare.block_count(), 0u);

  // A rack-1 victim, though, is exactly what that spare is for.
  kill(1);
  store.rehome_block(1, 0, 1);
  EXPECT_EQ(store.placement_of(1, 0, 1), spare_id);
  EXPECT_EQ(full_rack_spare.block_count(), 1u);

  // The invariant held throughout: no rack above n - k, bytes intact.
  std::vector<std::size_t> per(2, 0);
  for (std::uint32_t i = 0; i < code.n(); ++i)
    ++per[store.domain_of(store.placement_of(1, 0, i))];
  EXPECT_LE(per[0], code.n() - code.k());
  EXPECT_LE(per[1], code.n() - code.k());
  EXPECT_EQ(store.read_file(1, file.size()), file);
}

TEST_F(ClusterTest, DomainRollupConvictsARackOnlyWhenAllMembersAreDead) {
  codes::Carousel code(12, 6, 10, 12);
  auto o = opts();
  for (std::size_t i = 0; i < 12; ++i) o.domains.push_back(i % 2);
  CarouselStore store(code, ports_, code.s() * 4, o);
  HealthMonitor monitor(store, fast_monitor());
  monitor.probe_once();
  EXPECT_EQ(gauge("carousel_cluster_domain_count"), 2.0);
  EXPECT_EQ(gauge("carousel_cluster_domain_down"), 0.0);
  EXPECT_EQ(gauge("carousel_cluster_domain_degraded"), 0.0);

  kill(0);  // one member of rack 0: degraded, not down
  monitor.probe_once();
  monitor.probe_once();
  ASSERT_EQ(monitor.state_of(0), ServerState::kDead);
  EXPECT_EQ(gauge("carousel_cluster_domain_down"), 0.0);
  EXPECT_EQ(gauge("carousel_cluster_domain_degraded"), 1.0);
  EXPECT_EQ(monitor.dead_in_domain(0), 1u);
  EXPECT_EQ(monitor.dead_in_domain(1), 0u);   // rack 1 untouched
  EXPECT_EQ(monitor.dead_in_domain(999), 0u);  // never tracked: no domain

  for (std::size_t i = 2; i < 12; i += 2) kill(i);  // the rest of rack 0
  monitor.probe_once();
  monitor.probe_once();
  EXPECT_EQ(gauge("carousel_cluster_domain_down"), 1.0);
  EXPECT_EQ(gauge("carousel_cluster_domain_degraded"), 0.0);
  EXPECT_EQ(monitor.dead_in_domain(0), 6u);
  bool saw_down = false;
  for (const auto& d : monitor.domain_statuses())
    if (d.domain == 0) {
      saw_down = true;
      EXPECT_TRUE(d.down());
      EXPECT_EQ(d.members, 6u);
      EXPECT_EQ(d.dead, 6u);
    } else {
      EXPECT_FALSE(d.down());
    }
  EXPECT_TRUE(saw_down);
}

TEST_F(ClusterTest, MonitorWalksAliveSuspectDeadAndDampsRevival) {
  codes::Carousel code(12, 6, 10, 12);
  CarouselStore store(code, ports_, code.s() * 4, opts());
  HealthMonitor monitor(store, fast_monitor());

  monitor.probe_once();
  for (const auto& st : monitor.statuses())
    EXPECT_EQ(st.state, ServerState::kAlive) << "server " << st.id;
  EXPECT_EQ(gauge("carousel_cluster_servers"), 12.0);
  EXPECT_EQ(gauge("carousel_cluster_servers_alive"), 12.0);

  kill(3);
  monitor.probe_once();
  EXPECT_EQ(monitor.state_of(3), ServerState::kSuspect);
  EXPECT_EQ(gauge("carousel_cluster_servers_suspect"), 1.0);
  monitor.probe_once();
  EXPECT_EQ(monitor.state_of(3), ServerState::kDead);
  EXPECT_EQ(gauge("carousel_cluster_servers_dead"), 1.0);
  EXPECT_EQ(
      counter("carousel_cluster_transitions_total{to=\"dead\"}"), 1u);

  // One healthy answer is not enough to trust the server again (damping);
  // revive_after consecutive successes are.
  revive(3);
  monitor.probe_once();
  EXPECT_EQ(monitor.state_of(3), ServerState::kDead);
  monitor.probe_once();
  EXPECT_EQ(monitor.state_of(3), ServerState::kAlive);
  EXPECT_EQ(
      counter("carousel_cluster_transitions_total{to=\"alive\"}"), 1u);
  EXPECT_EQ(gauge("carousel_cluster_servers_dead"), 0.0);

  // Probes carry the server's inventory along.
  Client fill(ports_[3], fast_policy(), &registry_);
  fill.put(BlockKey{9, 0, 0}, random_bytes(512, 5));
  monitor.probe_once();
  for (const auto& st : monitor.statuses())
    if (st.id == 3) {
      EXPECT_EQ(st.blocks, 1u);
      EXPECT_EQ(st.bytes, 512u);
    }
  EXPECT_GT(counter("carousel_cluster_probes_total"), 0u);
  EXPECT_GT(counter("carousel_cluster_probe_failures_total"), 0u);
}

TEST_F(ClusterTest, BackgroundMonitorDeclaresDeathOnItsOwn) {
  codes::Carousel code(12, 6, 10, 12);
  CarouselStore store(code, ports_, code.s() * 4, opts());
  HealthMonitor monitor(store, fast_monitor());
  monitor.start();
  EXPECT_TRUE(monitor.running());
  monitor.start();  // idempotent

  kill(7);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (monitor.state_of(7) != ServerState::kDead &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(monitor.state_of(7), ServerState::kDead);

  monitor.stop();
  EXPECT_FALSE(monitor.running());
  monitor.stop();  // idempotent
}

// Regression: stop() used to leave the std::thread handle outside its lock,
// so two concurrent stop() calls could both pass the running_ check and
// join the same thread twice (std::terminate) — a race TSan sees on the
// handle.  The fix claims the handle under the lock; exactly one stopper
// joins, the rest find it empty.
TEST_F(ClusterTest, ConcurrentMonitorStopsJoinExactlyOnce) {
  codes::Carousel code(12, 6, 10, 12);
  CarouselStore store(code, ports_, code.s() * 4, opts());
  for (int round = 0; round < 5; ++round) {
    HealthMonitor monitor(store, fast_monitor());
    monitor.start();
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t)
      stoppers.emplace_back([&monitor] { monitor.stop(); });
    for (auto& s : stoppers) s.join();
    EXPECT_FALSE(monitor.running());
  }
}

// Same double-join regression for the scrubber's sweep thread.
TEST_F(ClusterTest, ConcurrentScrubberStopsJoinExactlyOnce) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 4;
  CarouselStore store(code, ports_, block, opts());
  store.put_file(1, random_bytes(code.k() * block, 37));
  Scrubber::Options sopts;
  sopts.interval = std::chrono::milliseconds(1);
  for (int round = 0; round < 5; ++round) {
    Scrubber scrubber(store, sopts);
    scrubber.start();
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t)
      stoppers.emplace_back([&scrubber] { scrubber.stop(); });
    for (auto& s : stoppers) s.join();
    EXPECT_FALSE(scrubber.running());
  }
}

TEST_F(ClusterTest, MonitorPicksUpSparesRegisteredLater) {
  codes::Carousel code(12, 6, 10, 12);
  CarouselStore store(code, ports_, code.s() * 4, opts());
  HealthMonitor monitor(store, fast_monitor());
  monitor.probe_once();
  EXPECT_EQ(monitor.statuses().size(), 12u);

  BlockServer spare;
  store.add_server(spare.port());
  monitor.probe_once();
  auto statuses = monitor.statuses();
  ASSERT_EQ(statuses.size(), 13u);
  EXPECT_TRUE(statuses.back().spare);
  EXPECT_EQ(statuses.back().state, ServerState::kAlive);
}

// ---- Placement ------------------------------------------------------------

TEST_F(ClusterTest, PlacementSeedsRoundRobinAndSparesTakeNoWrites) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 16;
  CarouselStore store(code, ports_, block, opts());
  BlockServer spare;
  const std::size_t spare_id = store.add_server(spare.port());
  EXPECT_EQ(spare_id, 12u);
  EXPECT_EQ(store.server_count(), 13u);
  auto endpoints = store.servers();
  ASSERT_EQ(endpoints.size(), 13u);
  EXPECT_FALSE(endpoints[0].spare);
  EXPECT_TRUE(endpoints[12].spare);

  auto file = random_bytes(2 * code.k() * block, 3);  // two stripes
  store.put_file(1, file);
  for (std::uint32_t s = 0; s < 2; ++s)
    for (std::uint32_t i = 0; i < code.n(); ++i)
      EXPECT_EQ(store.placement_of(1, s, i), i % 12);
  EXPECT_EQ(spare.block_count(), 0u);  // spares take no initial writes
  EXPECT_EQ(store.blocks_on(spare_id).size(), 0u);
  EXPECT_EQ(store.blocks_on(4).size(), 2u);  // block 4 of each stripe
  EXPECT_EQ(gauge("carousel_cluster_spare_servers"), 1.0);
}

// ---- Re-homing ------------------------------------------------------------

TEST_F(ClusterTest, RehomeMovesBlockOntoSpareAtOptimalTraffic) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 64;
  CarouselStore store(code, ports_, block, opts());
  BlockServer spare;
  const std::size_t spare_id = store.add_server(spare.port());

  auto file = random_bytes(code.k() * block, 11);  // one stripe
  store.put_file(5, file);

  kill(2);
  std::uint64_t fetched = store.rehome_block(5, 0, 2);
  // d helpers ship d/(d-k+1) block sizes in total: 10/5 = 2 blocks.
  EXPECT_EQ(fetched, std::uint64_t{2} * block);
  EXPECT_EQ(store.placement_of(5, 0, 2), spare_id);
  EXPECT_EQ(spare.block_count(), 1u);
  EXPECT_EQ(store.blocks_on(spare_id).size(), 1u);
  EXPECT_EQ(counter("carousel_cluster_rehomes_total"), 1u);
  EXPECT_EQ(counter("carousel_cluster_rehome_bytes_read_total"), fetched);

  // The file reads back bit-exact with server 2 still gone.
  EXPECT_EQ(store.read_file(5, file.size()), file);
}

TEST_F(ClusterTest, RehomeFailsTypedWhenNoCandidateExists) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 8;
  CarouselStore store(code, ports_, block, opts());
  auto file = random_bytes(code.k() * block, 13);
  store.put_file(2, file);

  kill(6);
  // Every other server already holds a block of the stripe and there is no
  // spare: nowhere to go, and the placement table must not move.
  EXPECT_THROW(store.rehome_block(2, 0, 6), RehomeError);
  EXPECT_EQ(store.placement_of(2, 0, 6), 6u);
  EXPECT_EQ(counter("carousel_cluster_rehome_failures_total"), 1u);
  EXPECT_EQ(counter("carousel_cluster_rehomes_total"), 0u);
}

TEST_F(ClusterTest, RehomeServerMovesEveryBlockOfADeadServer) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 16;
  CarouselStore store(code, ports_, block, opts());
  BlockServer spare;
  const std::size_t spare_id = store.add_server(spare.port());

  auto file = random_bytes(3 * code.k() * block, 17);  // three stripes
  store.put_file(8, file);

  kill(9);
  auto report = store.rehome_server(9);
  EXPECT_EQ(report.rehomed, 3u);  // block 9 of each stripe
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.bytes_read, std::uint64_t{3} * 2 * block);
  EXPECT_EQ(store.blocks_on(9).size(), 0u);
  EXPECT_EQ(store.blocks_on(spare_id).size(), 3u);
  EXPECT_EQ(store.read_file(8, file.size()), file);
}

// ---- Repair racing server death -------------------------------------------

TEST_F(ClusterTest, RepairRetriesOntoSpareWhenHomeDiesBeforeRePut) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 32;
  CarouselStore store(code, ports_, block, opts());
  BlockServer spare;
  const std::size_t spare_id = store.add_server(spare.port());

  auto file = random_bytes(code.k() * block, 19);
  store.put_file(3, file);

  // The home is gone by the time the rebuilt block needs a landing spot:
  // plain repair_block must re-home rather than fail or half-write.
  kill(4);
  std::uint64_t fetched = store.repair_block(3, 0, 4);
  EXPECT_EQ(fetched, std::uint64_t{2} * block);
  EXPECT_EQ(store.placement_of(3, 0, 4), spare_id);
  EXPECT_EQ(store.read_file(3, file.size()), file);
}

TEST_F(ClusterTest, RepairSurvivesHelperDeathAndDeadHomeTogether) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 32;
  CarouselStore store(code, ports_, block, opts());
  BlockServer spare;
  const std::size_t spare_id = store.add_server(spare.port());

  auto file = random_bytes(code.k() * block, 23);
  store.put_file(4, file);

  // Home dead, and one helper refuses every PROJECT: the MSR attempt is
  // abandoned mid-flight and the whole-block fallback still lands the
  // rebuilt block on the spare.  The stripe must end consistent, never a
  // silent partial write.
  kill(7);
  auto plan = std::make_shared<FaultPlan>(99);
  FaultRule rule;
  rule.op = Op::kProject;
  rule.action = FaultAction::kRefuse;
  rule.max_hits = 100;  // outlast every retry
  plan->add(rule);
  servers_[0]->set_fault_plan(plan);

  std::uint64_t fetched = store.repair_block(4, 0, 7);
  // The fallback reads k whole blocks; the abandoned MSR attempt may have
  // fetched some helper chunks first, so the bound is a range.
  EXPECT_GE(fetched, std::uint64_t{code.k()} * block);
  EXPECT_LE(fetched, std::uint64_t{code.k()} * block + 2 * block);
  EXPECT_EQ(store.placement_of(4, 0, 7), spare_id);
  servers_[0]->set_fault_plan(nullptr);
  EXPECT_EQ(store.read_file(4, file.size()), file);
}

// ---- Scrubber integration (the kill-a-server acceptance scenario) ---------

TEST_F(ClusterTest, ScrubberHealsDeadServersBlocksOntoSpare) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 64;
  CarouselStore store(code, ports_, block, opts());
  BlockServer spare;
  const std::size_t spare_id = store.add_server(spare.port());
  HealthMonitor monitor(store, fast_monitor());
  Scrubber::Options sopts;
  sopts.monitor = &monitor;
  Scrubber scrubber(store, sopts);

  auto file_a = random_bytes(2 * code.k() * block, 29);  // two stripes
  auto file_b = random_bytes(code.k() * block, 31);      // one stripe
  store.put_file(1, file_a);
  store.put_file(2, file_b);

  // Kill a server and let the detector convict it.
  kill(5);
  monitor.probe_once();
  monitor.probe_once();
  ASSERT_EQ(monitor.state_of(5), ServerState::kDead);

  // One sweep heals every block the dead server held — block 5 of all
  // three stripes — at exactly d/(d-k+1) block sizes per block.
  auto sweep = scrubber.run_once();
  EXPECT_EQ(sweep.rehomes, 3u);
  EXPECT_EQ(sweep.rehome_failures, 0u);
  EXPECT_EQ(sweep.unreachable, 0u);
  EXPECT_EQ(sweep.repair_bytes, std::uint64_t{3} * 2 * block);
  EXPECT_EQ(store.blocks_on(5).size(), 0u);
  EXPECT_EQ(store.blocks_on(spare_id).size(), 3u);
  EXPECT_EQ(counter("carousel_scrubber_rehomes_total"), 3u);
  EXPECT_EQ(counter("carousel_cluster_rehomes_total"), 3u);
  EXPECT_EQ(counter("carousel_cluster_rehome_bytes_read_total"),
            std::uint64_t{3} * 2 * block);
  EXPECT_EQ(gauge("carousel_cluster_pending_rehomes"), 0.0);

  // The cluster is whole again: the next sweep finds nothing to do, and
  // both files read back bit-exact with the server still gone.
  auto quiet = scrubber.run_once();
  EXPECT_EQ(quiet.ok, quiet.blocks_checked);
  EXPECT_EQ(quiet.rehomes, 0u);
  EXPECT_EQ(store.read_file(1, file_a.size()), file_a);
  EXPECT_EQ(store.read_file(2, file_b.size()), file_b);
}

TEST_F(ClusterTest, SweepHealsSiblingsAfterARehomeFailure) {
  // Two dead homes with no spare to absorb them (both rehomes must fail)
  // plus one corrupt block on a live server, all in the same stripe: each
  // block's outcome is independent, so the two rehome failures never
  // short-circuit the corrupt sibling's repair.
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 8;
  CarouselStore store(code, ports_, block, opts());
  HealthMonitor monitor(store, fast_monitor());
  Scrubber::Options sopts;
  sopts.monitor = &monitor;
  Scrubber scrubber(store, sopts);

  auto file = random_bytes(code.k() * block, 61);
  store.put_file(4, file);
  kill(2);
  kill(3);
  monitor.probe_once();
  monitor.probe_once();
  ASSERT_EQ(monitor.state_of(2), ServerState::kDead);
  ASSERT_EQ(monitor.state_of(3), ServerState::kDead);
  ASSERT_TRUE(servers_[5]->corrupt_block(BlockKey{4, 0, 5}, 7));

  auto sweep = scrubber.run_once();
  EXPECT_EQ(sweep.rehome_failures, 2u);  // blocks 2 and 3: nowhere to go
  EXPECT_EQ(sweep.rehomes, 0u);
  EXPECT_EQ(sweep.corrupt_found, 1u);
  EXPECT_EQ(sweep.repairs, 1u);  // block 5 healed despite its siblings
  EXPECT_EQ(sweep.repair_failures, 0u);
  EXPECT_EQ(store.verify_block(4, 0, 5), BlockState::kOk);
  EXPECT_EQ(store.read_file(4, file.size()), file);

  // Spares arrive (one per victim: a server may host at most one block of
  // a stripe): the next sweep finishes the job.
  BlockServer spare_a;
  BlockServer spare_b;
  store.add_server(spare_a.port());
  store.add_server(spare_b.port());
  auto heal = scrubber.run_once();
  EXPECT_EQ(heal.rehomes, 2u);
  EXPECT_EQ(heal.rehome_failures, 0u);
  EXPECT_EQ(store.blocks_on(2).size(), 0u);
  EXPECT_EQ(store.blocks_on(3).size(), 0u);
}

TEST_F(ClusterTest, ScrubberWithoutMonitorKeepsWaitingForTheServer) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 8;
  CarouselStore store(code, ports_, block, opts());
  BlockServer spare;
  store.add_server(spare.port());
  Scrubber scrubber(store);  // no monitor: the pre-self-healing behavior

  auto file = random_bytes(code.k() * block, 37);
  store.put_file(6, file);
  kill(1);
  auto sweep = scrubber.run_once();
  EXPECT_EQ(sweep.unreachable, 1u);
  EXPECT_EQ(sweep.rehomes, 0u);
  EXPECT_EQ(store.placement_of(6, 0, 1), 1u);  // untouched
  EXPECT_EQ(gauge("carousel_cluster_pending_rehomes"), 1.0);
}

TEST_F(ClusterTest, ScrubberLeavesSuspectHomesAlone) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 8;
  CarouselStore store(code, ports_, block, opts());
  BlockServer spare;
  store.add_server(spare.port());
  auto mopts = fast_monitor();
  mopts.dead_after = 5;  // slow conviction: stays suspect for a while
  HealthMonitor monitor(store, mopts);
  Scrubber::Options sopts;
  sopts.monitor = &monitor;
  Scrubber scrubber(store, sopts);

  auto file = random_bytes(code.k() * block, 41);
  store.put_file(7, file);
  kill(8);
  monitor.probe_once();
  ASSERT_EQ(monitor.state_of(8), ServerState::kSuspect);
  auto sweep = scrubber.run_once();
  EXPECT_EQ(sweep.unreachable, 1u);  // tentative verdict: no churn
  EXPECT_EQ(sweep.rehomes, 0u);
  EXPECT_EQ(store.placement_of(7, 0, 8), 8u);
}

// ---- Whole-operation budgets ----------------------------------------------

TEST_F(ClusterTest, ReadFileStopsAtItsBudgetAcrossStalledServers) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 8;
  auto o = opts();
  o.op_budget = std::chrono::milliseconds(250);
  CarouselStore store(code, ports_, block, o);
  // Several stripes: the fan-out fetches one stripe's extents in parallel,
  // so a single stalled stripe costs ~one delay, not p of them — the budget
  // has to bite on the serial stripe-to-stripe walk.
  auto file = random_bytes(6 * code.k() * block, 43);
  store.put_file(9, file);

  // Every server stalls every data op well under the per-op timeout, so no
  // single op fails — only the whole-operation budget can end the read.
  for (auto& s : servers_) {
    auto plan = std::make_shared<FaultPlan>(7);
    FaultRule rule;
    rule.action = FaultAction::kDelay;
    rule.delay_ms = 120;
    rule.max_hits = 1'000'000;  // every op stalls, none fails
    plan->add(rule);
    s->set_fault_plan(plan);
  }
  const auto before = std::chrono::steady_clock::now();
  EXPECT_THROW(store.read_file(9, file.size()), StoreDeadlineError);
  const auto elapsed = std::chrono::steady_clock::now() - before;
  // Budget plus at most one in-flight op, with slack for slow machines.
  EXPECT_LT(elapsed, std::chrono::milliseconds(2000));
  EXPECT_GE(counter("carousel_store_budget_exhausted_total"), 1u);

  for (auto& s : servers_) s->set_fault_plan(nullptr);
  EXPECT_EQ(store.read_file(9, file.size()), file);  // budget is per call
}

TEST_F(ClusterTest, RepairStopsAtItsBudgetToo) {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 8;
  auto o = opts();
  o.op_budget = std::chrono::milliseconds(250);
  CarouselStore store(code, ports_, block, o);
  auto file = random_bytes(code.k() * block, 47);
  store.put_file(10, file);

  for (auto& s : servers_) {
    auto plan = std::make_shared<FaultPlan>(7);
    FaultRule rule;
    rule.action = FaultAction::kDelay;
    rule.delay_ms = 120;
    rule.max_hits = 1'000'000;  // every op stalls, none fails
    plan->add(rule);
    s->set_fault_plan(plan);
  }
  EXPECT_THROW(store.repair_block(10, 0, 0), StoreDeadlineError);
  EXPECT_GE(counter("carousel_store_budget_exhausted_total"), 1u);
}

// ---- Graceful drain -------------------------------------------------------

class DrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("carousel_drain_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(DrainTest, InFlightPutCompletesAndNewConnectionsAreRefused) {
  PersistentBlockStore::Options popts;
  popts.fsync = false;
  auto server = std::make_unique<BlockServer>(0, dir_, popts);
  const std::uint16_t port = server->port();

  // Stall the PUT server-side so it is reliably in flight when drain hits.
  auto plan = std::make_shared<FaultPlan>(1);
  FaultRule rule;
  rule.op = Op::kPut;
  rule.action = FaultAction::kDelay;
  rule.delay_ms = 300;
  plan->add(rule);
  server->set_fault_plan(plan);

  auto data = random_bytes(4096, 53);
  std::exception_ptr put_error;
  std::thread writer([&] {
    try {
      Client client(port, fast_policy());
      client.put(BlockKey{1, 0, 0}, data);
    } catch (...) {
      put_error = std::current_exception();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  server->drain();
  writer.join();
  // The in-flight PUT was acknowledged, not cut off.
  EXPECT_FALSE(put_error) << "draining server dropped an in-flight PUT";

  // Drained means drained: no new connections are accepted.
  RetryPolicy one_shot = fast_policy();
  one_shot.max_attempts = 1;
  Client late(port, one_shot);
  EXPECT_THROW(late.ping(), TransportError);
  server->drain();  // idempotent
  server->stop();   // and stop() after drain() is a no-op

  // Everything acknowledged is on disk: a restart recovers the block clean.
  server = std::make_unique<BlockServer>(port, dir_, popts);
  EXPECT_EQ(server->recovery_report().recovered, 1u);
  EXPECT_EQ(server->recovery_report().quarantined_files, 0u);
  Client reader(port, fast_policy());
  auto got = reader.get(BlockKey{1, 0, 0});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);
}

TEST_F(DrainTest, DrainedFleetMemberReadsBackAfterRestart) {
  // A store-level view of drain: drain one server, restart it, and the
  // store (whose client reconnects lazily) keeps working against it.
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 8;
  std::vector<std::unique_ptr<BlockServer>> fleet;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 12; ++i) fleet.push_back(std::make_unique<BlockServer>());
  for (const auto& s : fleet) ports.push_back(s->port());
  obs::MetricsRegistry registry;
  StoreOptions o;
  o.policy = fast_policy();
  o.registry = &registry;
  CarouselStore store(code, ports, block, o);
  auto file = random_bytes(code.k() * block, 59);
  store.put_file(1, file);

  fleet[2]->drain();
  EXPECT_EQ(store.read_file(1, file.size()), file);  // degraded path
  fleet[2] = std::make_unique<BlockServer>(ports[2]);
  store.repair_block(1, 0, 2);  // block was RAM-only: regenerate it
  EXPECT_EQ(store.read_file(1, file.size()), file);
}

}  // namespace
}  // namespace carousel::net
