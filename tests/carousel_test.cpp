#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "codes/carousel.h"
#include "codes/rs.h"
#include "test_util.h"

namespace carousel::codes {
namespace {

using test::random_bytes;
using test::split_const_spans;
using test::split_spans;
using test::subsets;

std::pair<std::vector<Byte>, std::vector<Byte>> make_stripe(
    const Carousel& code, std::size_t unit_bytes, std::uint32_t seed = 5) {
  const std::size_t w = code.s() * unit_bytes;
  auto data = random_bytes(code.k() * w, seed);
  std::vector<Byte> blob(code.n() * w);
  code.encode(data, split_spans(blob, code.n()));
  return {std::move(data), std::move(blob)};
}

TEST(Carousel, PaperToyExampleGeometry) {
  // Paper Fig. 2: (n=3, k=2) — each block splits into 3 units, 2 carrying
  // original data, and block i holds file units {2i, 2i+1} at its head.
  Carousel c(3, 2, 2, 3);
  EXPECT_EQ(c.s(), 3u);
  EXPECT_EQ(c.expansion(), 3u);
  EXPECT_EQ(c.data_units_per_block(), 2u);
  EXPECT_TRUE(c.selection_is_papers());
  for (std::size_t i = 0; i < 3; ++i) {
    auto [lo, hi] = c.message_slice(i);
    EXPECT_EQ(lo, 2 * i);
    EXPECT_EQ(hi, 2 * i + 2);
  }
}

TEST(Carousel, ReducesToRsWhenPEqualsK) {
  // (n, k, d=k, p=k) must be exactly the systematic RS code.
  Carousel c(6, 4, 4, 4);
  ReedSolomon rs(6, 4);
  EXPECT_EQ(c.s(), 1u);
  EXPECT_EQ(c.generator(), rs.generator());
}

TEST(Carousel, ReducesToMsrWhenPEqualsK) {
  Carousel c(8, 4, 6, 4);
  ProductMatrixMSR msr(8, 4, 6);
  EXPECT_EQ(c.s(), msr.s());
  EXPECT_EQ(c.generator(), msr.generator());
}

TEST(Carousel, DataUnitsLayoutInvariant) {
  // Block i < p holds message units [i*K, (i+1)*K) verbatim at its head.
  for (auto [n, k, d, p] :
       {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{
            3, 2, 2, 3},
        {5, 3, 3, 5},
        {12, 6, 6, 12},
        {12, 6, 10, 12},
        {12, 6, 10, 10},
        {12, 6, 10, 8}}) {
    Carousel c(n, k, d, p);
    const std::size_t ub = 7;
    const std::size_t w = c.s() * ub;
    auto [data, blob] = make_stripe(c, ub);
    auto views = split_const_spans(blob, n);
    const std::size_t K = c.data_units_per_block();
    for (std::size_t i = 0; i < p; ++i) {
      EXPECT_EQ(c.data_extent_bytes(i, w), K * ub);
      EXPECT_TRUE(std::equal(views[i].begin(),
                             views[i].begin() + K * ub,
                             data.begin() + i * K * ub))
          << c.params().to_string() << " block " << i;
    }
    for (std::size_t i = p; i < n; ++i)
      EXPECT_EQ(c.data_extent_bytes(i, w), 0u);
  }
}

TEST(Carousel, GatherDataIsIdentity) {
  Carousel c(12, 6, 10, 12);
  const std::size_t ub = 5;
  auto [data, blob] = make_stripe(c, ub);
  auto views = split_const_spans(blob, 12);
  std::vector<std::span<const Byte>> first_p(views.begin(),
                                             views.begin() + c.p());
  std::vector<Byte> out(data.size());
  c.gather_data(first_p, out);
  EXPECT_EQ(out, data);
}

TEST(Carousel, MdsExhaustiveSmall) {
  for (auto [n, k, d, p] :
       {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{
            3, 2, 2, 3},
        {5, 3, 3, 5},
        {5, 3, 3, 4},
        {6, 3, 4, 6},
        {6, 3, 4, 5},
        {5, 2, 3, 5},
        {7, 4, 6, 6}}) {
    Carousel c(n, k, d, p);
    const std::size_t ub = 3;
    const std::size_t w = c.s() * ub;
    auto [data, blob] = make_stripe(c, ub);
    auto views = split_const_spans(blob, n);
    for (const auto& ids : subsets(n, k)) {
      std::vector<std::span<const Byte>> chosen;
      for (std::size_t id : ids) chosen.push_back(views[id]);
      std::vector<Byte> out(k * w);
      c.decode(ids, chosen, out);
      ASSERT_EQ(out, data) << c.params().to_string();
    }
  }
}

TEST(Carousel, DecodeParallelNoFailure) {
  Carousel c(12, 6, 10, 10);
  const std::size_t ub = 4;
  const std::size_t w = c.s() * ub;
  auto [data, blob] = make_stripe(c, ub);
  auto views = split_const_spans(blob, 12);
  std::vector<std::size_t> ids(c.p());
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t id : ids) chosen.push_back(views[id]);
  std::vector<Byte> out(c.k() * w);
  auto stats = c.decode_parallel(ids, chosen, out);
  EXPECT_EQ(out, data);
  // Each of the p blocks contributes exactly k/p of a block.
  EXPECT_EQ(stats.bytes_read, c.k() * w);
  EXPECT_EQ(stats.sources, c.p());
}

TEST(Carousel, DecodeParallelEverySingleFailure) {
  // Any one data-carrying block lost; every pure-parity block as stand-in.
  for (auto [n, k, d, p] :
       {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{
            6, 3, 3, 5},
        {6, 3, 4, 5},
        {12, 6, 10, 10}}) {
    Carousel c(n, k, d, p);
    const std::size_t ub = 3;
    const std::size_t w = c.s() * ub;
    auto [data, blob] = make_stripe(c, ub);
    auto views = split_const_spans(blob, n);
    for (std::size_t lost = 0; lost < p; ++lost) {
      for (std::size_t sub = p; sub < n; ++sub) {
        std::vector<std::size_t> ids;
        for (std::size_t i = 0; i < p; ++i)
          if (i != lost) ids.push_back(i);
        ids.push_back(sub);
        std::vector<std::span<const Byte>> chosen;
        for (std::size_t id : ids) chosen.push_back(views[id]);
        std::vector<Byte> out(c.k() * w);
        auto stats = c.decode_parallel(ids, chosen, out);
        ASSERT_EQ(out, data) << c.params().to_string() << " lost=" << lost
                             << " sub=" << sub;
        EXPECT_EQ(stats.bytes_read, c.k() * w);
      }
    }
  }
}

TEST(Carousel, DecodeParallelDoubleFailure) {
  Carousel c(12, 6, 10, 8);  // 4 pure-parity blocks available
  const std::size_t ub = 3;
  const std::size_t w = c.s() * ub;
  auto [data, blob] = make_stripe(c, ub);
  auto views = split_const_spans(blob, 12);
  // Lose data blocks 2 and 5; stand in blocks 9 and 11.
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < 8; ++i)
    if (i != 2 && i != 5) ids.push_back(i);
  ids.push_back(9);
  ids.push_back(11);
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t id : ids) chosen.push_back(views[id]);
  std::vector<Byte> out(c.k() * w);
  c.decode_parallel(ids, chosen, out);
  EXPECT_EQ(out, data);
}

TEST(Carousel, DecodeParallelRejectsUnderReplacedSets) {
  Carousel c(6, 3, 3, 6);  // p = n: no pure-parity stand-ins exist
  const std::size_t ub = 2;
  auto [data, blob] = make_stripe(c, ub);
  auto views = split_const_spans(blob, 6);
  std::vector<std::size_t> ids = {0, 1, 2, 3, 4};  // block 5 lost, p-1 blocks
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t id : ids) chosen.push_back(views[id]);
  std::vector<Byte> out(data.size());
  EXPECT_THROW(c.decode_parallel(ids, chosen, out), std::invalid_argument);
}

TEST(Carousel, RepairEveryBlockMsrBase) {
  Carousel c(6, 3, 4, 6);
  const std::size_t ub = 5;
  const std::size_t w = c.s() * ub;
  auto [data, blob] = make_stripe(c, ub);
  auto views = split_const_spans(blob, 6);
  for (std::size_t failed = 0; failed < 6; ++failed) {
    std::vector<std::size_t> helpers;
    for (std::size_t h = 0; h < 6 && helpers.size() < c.d(); ++h)
      if (h != failed) helpers.push_back(h);
    std::vector<std::vector<Byte>> chunk_store;
    std::vector<std::span<const Byte>> chunks;
    for (std::size_t h : helpers) {
      chunk_store.emplace_back(c.helper_chunk_units() * ub);
      c.helper_compute(h, failed, views[h], chunk_store.back());
    }
    for (auto& ch : chunk_store) chunks.emplace_back(ch);
    std::vector<Byte> rebuilt(w);
    auto stats = c.newcomer_compute(failed, helpers, chunks, rebuilt);
    ASSERT_TRUE(
        std::equal(rebuilt.begin(), rebuilt.end(), views[failed].begin()))
        << "failed=" << failed;
    // Optimal traffic: d/(d-k+1) block sizes.
    EXPECT_DOUBLE_EQ(double(stats.bytes_read) / double(w),
                     c.params().repair_traffic_blocks());
  }
}

TEST(Carousel, RepairEveryBlockRsBase) {
  Carousel c(5, 3, 3, 5);  // d == k: helpers ship whole blocks
  const std::size_t ub = 5;
  const std::size_t w = c.s() * ub;
  auto [data, blob] = make_stripe(c, ub);
  auto views = split_const_spans(blob, 5);
  EXPECT_EQ(c.helper_chunk_units(), c.s());
  for (std::size_t failed = 0; failed < 5; ++failed) {
    std::vector<std::size_t> helpers;
    for (std::size_t h = 0; h < 5 && helpers.size() < c.d(); ++h)
      if (h != failed) helpers.push_back(h);
    std::vector<std::vector<Byte>> chunk_store;
    std::vector<std::span<const Byte>> chunks;
    for (std::size_t h : helpers) {
      chunk_store.emplace_back(w);
      c.helper_compute(h, failed, views[h], chunk_store.back());
    }
    for (auto& ch : chunk_store) chunks.emplace_back(ch);
    std::vector<Byte> rebuilt(w);
    auto stats = c.newcomer_compute(failed, helpers, chunks, rebuilt);
    ASSERT_TRUE(
        std::equal(rebuilt.begin(), rebuilt.end(), views[failed].begin()));
    EXPECT_EQ(stats.bytes_read, c.k() * w);  // RS repair traffic
  }
}

TEST(Carousel, RepairMatchesBaseMsrTraffic) {
  // Carousel must not add a single byte over its base MSR code (Fig. 7).
  Carousel c(12, 6, 10, 12);
  ProductMatrixMSR msr(12, 6, 10);
  const std::size_t w_units = 420;  // divisible by both s values
  EXPECT_EQ(double(c.helper_chunk_units()) / double(c.s()),
            double(msr.helper_chunk_units()) / double(msr.s()));
  (void)w_units;
}

TEST(Carousel, SelectionPatternMathematics) {
  // Paper §VI-B invariants of the round-robin unit selection:
  //  - every data-carrying block offers exactly K units,
  //  - within every expansion coordinate u, exactly k*alpha units are
  //    selected overall (so Ĝ₀ is block-diagonal with square blocks),
  //  - the pattern matches the published rule (j - i) mod N0 in [0, K0).
  for (auto [n, k, d, p] :
       {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{
            3, 2, 2, 3},
        {12, 6, 10, 10},
        {12, 6, 10, 12},
        {10, 4, 6, 7},
        {20, 10, 19, 20}}) {
    Carousel c(n, k, d, p);
    ASSERT_TRUE(c.selection_is_papers());
    const std::size_t alpha = c.params().alpha();
    const std::size_t P = c.expansion();
    const std::size_t K = c.data_units_per_block();
    const std::size_t g = std::gcd(k, p);
    const std::size_t K0 = k / g, N0 = p / g;
    std::vector<std::size_t> per_class(P, 0);
    for (std::size_t slot = 0; slot < p; ++slot) {
      auto pattern = c.selection_pattern(slot);
      ASSERT_EQ(pattern.size(), K) << c.params().to_string();
      for (std::size_t j : pattern) {
        ASSERT_LT(j, alpha * P);
        ASSERT_LT((j + N0 - slot % N0) % N0, K0)
            << "unit " << j << " of slot " << slot
            << " violates the round-robin rule";
        ++per_class[j % P];
      }
    }
    for (std::size_t u = 0; u < P; ++u)
      EXPECT_EQ(per_class[u], k * alpha)
          << c.params().to_string() << " class " << u;
  }
}

TEST(Carousel, RepairProjectionMatchesHelperCompute) {
  // The remote-executable projection description must compute exactly what
  // helper_compute computes locally.
  Carousel c(12, 6, 10, 10);
  const std::size_t ub = 7;
  auto [data, blob] = make_stripe(c, ub);
  auto views = split_const_spans(blob, 12);
  for (std::size_t failed : {0u, 5u, 11u}) {
    for (std::size_t helper : {1u, 9u, 10u}) {
      if (helper == failed) continue;
      std::vector<Byte> direct(c.helper_chunk_units() * ub);
      c.helper_compute(helper, failed, views[helper], direct);
      auto proj = c.repair_projection(helper, failed);
      ASSERT_EQ(proj.size(), c.helper_chunk_units());
      std::vector<Byte> via_proj(direct.size(), 0);
      for (std::size_t o = 0; o < proj.size(); ++o)
        for (auto [pos, coeff] : proj[o])
          for (std::size_t b = 0; b < ub; ++b)
            via_proj[o * ub + b] ^=
                gf::mul(coeff, views[helper][pos * ub + b]);
      EXPECT_EQ(via_proj, direct) << "failed=" << failed
                                  << " helper=" << helper;
    }
  }
}

TEST(Carousel, GeneratorSparsity) {
  // Paper §VIII-A / Fig. 5: parity-unit rows keep base-code density, i.e.
  // at most k*alpha nonzeros per row (out of k*s columns).
  for (auto [n, k, d, p] :
       {std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>{
            3, 2, 2, 3},
        {12, 6, 6, 12},
        {12, 6, 10, 12}}) {
    Carousel c(n, k, d, p);
    const auto& g = c.generator();
    const std::size_t limit = k * c.params().alpha();
    for (std::size_t r = 0; r < g.rows(); ++r)
      EXPECT_LE(g.row_support(r).size(), limit)
          << c.params().to_string() << " row " << r;
  }
}

TEST(Carousel, InvalidParamsRejected) {
  EXPECT_THROW(Carousel(6, 3, 3, 2), std::invalid_argument);   // p < k
  EXPECT_THROW(Carousel(6, 3, 3, 7), std::invalid_argument);   // p > n
  EXPECT_THROW(Carousel(6, 3, 6, 6), std::invalid_argument);   // d >= n
  EXPECT_THROW(Carousel(8, 4, 5, 8), std::invalid_argument);   // PM gap
  EXPECT_THROW(Carousel(6, 0, 0, 0), std::invalid_argument);
}

// The paper's full Hadoop parameter sweep: (12, 6, 10, p) for p in
// {6, 8, 10, 12}, plus the Fig. 6 grid with n = 2k, d in {k, 2k-1}, p = n.
class CarouselGrid : public ::testing::TestWithParam<
                         std::tuple<int, int, int, int>> {};

TEST_P(CarouselGrid, EndToEndRoundTrip) {
  auto [n, k, d, p] = GetParam();
  Carousel c(n, k, d, p);
  EXPECT_TRUE(c.selection_is_papers())
      << "published selection pattern went singular for "
      << c.params().to_string();
  const std::size_t ub = 2;
  const std::size_t w = c.s() * ub;
  auto [data, blob] = make_stripe(c, ub);
  auto views = split_const_spans(blob, n);

  // Parallel gather.
  std::vector<std::span<const Byte>> first_p(views.begin(),
                                             views.begin() + c.p());
  std::vector<Byte> gathered(data.size());
  c.gather_data(first_p, gathered);
  EXPECT_EQ(gathered, data);

  // MDS from the last k blocks.
  std::vector<std::size_t> ids;
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t id = n - k; id < static_cast<std::size_t>(n); ++id) {
    ids.push_back(id);
    chosen.push_back(views[id]);
  }
  std::vector<Byte> out(c.k() * w);
  c.decode(ids, chosen, out);
  EXPECT_EQ(out, data);

  // Repair block 0 from blocks 1..d.
  std::vector<std::size_t> helpers;
  for (std::size_t h = 1; h <= c.d(); ++h) helpers.push_back(h);
  std::vector<std::vector<Byte>> chunk_store;
  std::vector<std::span<const Byte>> chunks;
  for (std::size_t h : helpers) {
    chunk_store.emplace_back(c.helper_chunk_units() * ub);
    c.helper_compute(h, 0, views[h], chunk_store.back());
  }
  for (auto& ch : chunk_store) chunks.emplace_back(ch);
  std::vector<Byte> rebuilt(w);
  auto stats = c.newcomer_compute(0, helpers, chunks, rebuilt);
  EXPECT_TRUE(std::equal(rebuilt.begin(), rebuilt.end(), views[0].begin()));
  EXPECT_DOUBLE_EQ(double(stats.bytes_read) / double(w),
                   c.params().repair_traffic_blocks());
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, CarouselGrid,
    ::testing::Values(
        // Hadoop experiments: (12, 6, 10, p).
        std::tuple{12, 6, 10, 6}, std::tuple{12, 6, 10, 8},
        std::tuple{12, 6, 10, 10}, std::tuple{12, 6, 10, 12},
        // Fig. 6 grid, d = k.
        std::tuple{4, 2, 2, 4}, std::tuple{8, 4, 4, 8},
        std::tuple{12, 6, 6, 12}, std::tuple{16, 8, 8, 16},
        std::tuple{20, 10, 10, 20},
        // Fig. 6 grid, d = 2k-1.
        std::tuple{4, 2, 3, 4}, std::tuple{8, 4, 7, 8},
        std::tuple{12, 6, 11, 12}, std::tuple{16, 8, 15, 16},
        std::tuple{20, 10, 19, 20},
        // Assorted p strictly between k and n.
        std::tuple{9, 6, 6, 7}, std::tuple{10, 4, 6, 7},
        std::tuple{21, 10, 18, 14}));

}  // namespace
}  // namespace carousel::codes
