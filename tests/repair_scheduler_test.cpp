// RepairScheduler tests: criticality ordering and preemption, the global
// concurrent-repair cap, per-server byte budgets (deferral, helper
// spreading, window reset), AIMD admission control on a synthetic
// foreground p99, and spare registration racing an active queue drain.
//
// Most tests use a (6,4,4,6) code: d == k makes repair the whole-block
// path (cheap, deterministic) and n-k = 2 makes criticality 2 the
// emergency threshold, so both sides of the admission bypass are easy to
// reach.  The MSR budget test switches to the paper's (12,6,10,12).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "codes/carousel.h"
#include "net/block_server.h"
#include "net/client.h"
#include "net/cluster.h"
#include "net/errors.h"
#include "net/repair_scheduler.h"
#include "net/scrubber.h"
#include "net/store.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace carousel::net {
namespace {

using codes::Byte;
using test::random_bytes;

RetryPolicy fast_policy() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.io_timeout = std::chrono::milliseconds(250);
  p.base_backoff = std::chrono::milliseconds(2);
  p.max_backoff = std::chrono::milliseconds(20);
  p.op_deadline = std::chrono::milliseconds(3000);
  return p;
}

HealthMonitor::Options fast_monitor() {
  HealthMonitor::Options o;
  o.interval = std::chrono::milliseconds(20);
  o.suspect_after = 1;
  o.dead_after = 2;
  o.revive_after = 2;
  o.probe_policy = fast_policy();
  o.probe_policy.max_attempts = 2;
  o.probe_policy.op_deadline = std::chrono::milliseconds(1000);
  return o;
}

/// Fleet of RAM block servers whose members can be killed mid-test.
class RepairSchedulerTest : public ::testing::Test {
 protected:
  void make_fleet(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      servers_.push_back(std::make_unique<BlockServer>());
    for (const auto& s : servers_) ports_.push_back(s->port());
  }

  void kill(std::size_t i) { servers_[i].reset(); }

  StoreOptions opts() {
    StoreOptions o;
    o.policy = fast_policy();
    o.registry = &registry_;
    return o;
  }

  std::uint64_t counter(const std::string& name) {
    auto snap = registry_.snapshot();
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  }

  double gauge(const std::string& name) {
    auto snap = registry_.snapshot();
    auto it = snap.gauges.find(name);
    return it == snap.gauges.end() ? -1.0 : it->second;
  }

  obs::MetricsRegistry registry_;
  std::vector<std::unique_ptr<BlockServer>> servers_;
  std::vector<std::uint16_t> ports_;
};

// ---- Construction-time validation -----------------------------------------

TEST_F(RepairSchedulerTest, RejectsNonsenseOptionsAtConstruction) {
  make_fleet(6);
  codes::Carousel code(6, 4, 4, 6);
  CarouselStore store(code, ports_, code.s() * 8, opts());
  RepairScheduler::Options bad;
  bad.max_concurrent = 0;  // a scheduler that may never repair
  EXPECT_THROW(RepairScheduler(store, bad), std::invalid_argument);
  bad = {};
  bad.workers = 0;  // a background drain with nobody to drain it
  EXPECT_THROW(RepairScheduler(store, bad), std::invalid_argument);
  bad = {};
  bad.budget_window = std::chrono::milliseconds(0);
  EXPECT_THROW(RepairScheduler(store, bad), std::invalid_argument);
  bad = {};
  bad.admission_interval = std::chrono::milliseconds(-1);
  EXPECT_THROW(RepairScheduler(store, bad), std::invalid_argument);
  bad = {};
  bad.tick = std::chrono::milliseconds(0);
  EXPECT_THROW(RepairScheduler(store, bad), std::invalid_argument);
  bad = {};
  bad.p99_budget = std::chrono::milliseconds(-1);
  EXPECT_THROW(RepairScheduler(store, bad), std::invalid_argument);
  RepairScheduler ok(store);  // defaults remain valid
  EXPECT_EQ(ok.stats().enqueued, 0u);
}

// ---- Queue ordering and escalation ----------------------------------------

TEST_F(RepairSchedulerTest, TwoErasureStripeJumpsAOneErasureQueue) {
  make_fleet(6);
  codes::Carousel code(6, 4, 4, 6);
  const std::size_t block = code.s() * 16;
  CarouselStore store(code, ports_, block, opts());
  for (std::uint32_t f = 1; f <= 3; ++f)
    store.put_file(f, random_bytes(code.k() * block, f));
  RepairScheduler sched(store);

  sched.enqueue({1, 0, 0}, RepairScheduler::Kind::kRepair, 1);
  sched.enqueue({2, 0, 0}, RepairScheduler::Kind::kRepair, 2);
  sched.enqueue({3, 0, 0}, RepairScheduler::Kind::kRepair, 1);

  auto head = sched.peek();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->block.file, 2u);  // the 2-erasure stripe goes first
  EXPECT_EQ(head->criticality, 2u);
  EXPECT_EQ(sched.stats().enqueued, 3u);
  EXPECT_EQ(gauge("carousel_repair_queue_depth"), 3.0);

  // Re-enqueueing an already-queued block only ever escalates it.
  sched.enqueue({1, 0, 0}, RepairScheduler::Kind::kRepair, 1);  // no-op
  EXPECT_EQ(sched.stats().updated, 0u);
  sched.enqueue({1, 0, 0}, RepairScheduler::Kind::kRehome, 3);
  EXPECT_EQ(sched.stats().updated, 1u);
  head = sched.peek();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->block.file, 1u);
  EXPECT_EQ(head->kind, RepairScheduler::Kind::kRehome);
  EXPECT_EQ(sched.stats().enqueued, 3u);  // still three distinct items
  EXPECT_EQ(counter("carousel_repair_updated_total"), 1u);
}

TEST_F(RepairSchedulerTest, StepHealsTheMostCriticalStripeFirst) {
  make_fleet(6);
  codes::Carousel code(6, 4, 4, 6);
  const std::size_t block = code.s() * 16;
  CarouselStore store(code, ports_, block, opts());
  auto file_a = random_bytes(code.k() * block, 7);
  auto file_b = random_bytes(code.k() * block, 8);
  store.put_file(1, file_a);
  store.put_file(2, file_b);
  RepairScheduler sched(store);
  Scrubber::Options sopts;
  sopts.scheduler = &sched;
  Scrubber scrubber(store, sopts);

  // File 1 loses two blocks (criticality 2 = n-k: the erasure limit),
  // file 2 loses one.
  store.drop_block(1, 0, 0);
  store.drop_block(1, 0, 1);
  store.drop_block(2, 0, 0);

  auto sweep = scrubber.run_once();
  EXPECT_EQ(sweep.enqueued, 3u);  // the sweep heals nothing inline
  EXPECT_EQ(sweep.repairs, 0u);
  EXPECT_EQ(sweep.missing_found, 3u);
  EXPECT_EQ(counter("carousel_scrubber_enqueued_total"), 3u);

  // First dispatch goes to the 2-erasure stripe while the 1-erasure block
  // is still broken.
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kDispatched);
  EXPECT_EQ(store.verify_block(1, 0, 0), BlockState::kOk);
  EXPECT_EQ(store.verify_block(2, 0, 0), BlockState::kMissing);

  while (sched.step() == RepairScheduler::StepResult::kDispatched) {
  }
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kIdle);
  auto stats = sched.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GT(stats.bytes_moved, 0u);

  auto quiet = scrubber.run_once();
  EXPECT_EQ(quiet.ok, quiet.blocks_checked);
  EXPECT_EQ(quiet.enqueued, 0u);
  EXPECT_EQ(store.read_file(1, file_a.size()), file_a);
  EXPECT_EQ(store.read_file(2, file_b.size()), file_b);
}

TEST_F(RepairSchedulerTest, DomainCorrelatedErasuresBoostCriticality) {
  // Three racks of two servers each (domain = id % 3); the whole of rack 0
  // dies.  A rehome whose dead home sits in the gutted rack must jump
  // ahead of an equally-critical rehome enqueued first, because losing a
  // rack is one event away from losing data — scattered singles are not.
  make_fleet(6);
  codes::Carousel code(6, 4, 4, 6);
  const std::size_t block = code.s() * 16;
  auto o = opts();
  for (std::size_t i = 0; i < 6; ++i) o.domains.push_back(i % 3);
  CarouselStore store(code, ports_, block, o);
  store.put_file(1, random_bytes(code.k() * block, 17));
  HealthMonitor monitor(store, fast_monitor());
  RepairScheduler::Options ropts;
  ropts.monitor = &monitor;
  RepairScheduler sched(store, ropts);

  kill(0);
  kill(3);  // rack 0 is gone: two dead servers share one domain
  monitor.probe_once();
  monitor.probe_once();
  ASSERT_EQ(monitor.state_of(0), ServerState::kDead);
  ASSERT_EQ(monitor.state_of(3), ServerState::kDead);
  ASSERT_EQ(monitor.dead_in_domain(0), 2u);

  // No home hint (legacy callers), then a home in the gutted rack.
  sched.enqueue({1, 0, 1}, RepairScheduler::Kind::kRehome, 1);
  sched.enqueue({1, 0, 0}, RepairScheduler::Kind::kRehome, 1, 0);
  auto head = sched.peek();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->block.index, 0u);  // boosted past the earlier item
  EXPECT_EQ(head->criticality, 2u);  // 1 + (dead_in_domain - 1)
  EXPECT_EQ(sched.stats().domain_boosts, 1u);
  EXPECT_EQ(counter("carousel_repair_domain_boosts_total"), 1u);

  // Its rack-mate boosts too; a home in a healthy rack does not.
  sched.enqueue({1, 0, 3}, RepairScheduler::Kind::kRehome, 1, 3);
  sched.enqueue({1, 0, 4}, RepairScheduler::Kind::kRehome, 1, 4);
  EXPECT_EQ(sched.stats().domain_boosts, 2u);
  EXPECT_EQ(counter("carousel_repair_domain_boosts_total"), 2u);
}

// ---- Byte budgets ---------------------------------------------------------

TEST_F(RepairSchedulerTest, EgressBudgetDefersUntilTheWindowRolls) {
  make_fleet(6);
  codes::Carousel code(6, 4, 4, 6);
  const std::size_t block = code.s() * 16;
  CarouselStore store(code, ports_, block, opts());
  auto file_a = random_bytes(code.k() * block, 9);
  auto file_b = random_bytes(code.k() * block, 10);
  store.put_file(1, file_a);
  store.put_file(2, file_b);

  RepairScheduler::Options ropts;
  ropts.server_egress_budget = block;  // one whole-block fetch per window
  ropts.budget_window = std::chrono::hours(1);  // never rolls on its own
  RepairScheduler sched(store, ropts);

  store.drop_block(1, 0, 0);
  store.drop_block(2, 0, 1);
  sched.enqueue({1, 0, 0}, RepairScheduler::Kind::kRepair, 1);
  sched.enqueue({2, 0, 1}, RepairScheduler::Kind::kRepair, 1);

  // The first heal charges k = 4 of the 6 servers a whole block of egress;
  // the window now has too few servers with headroom for a second heal.
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kDispatched);
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kDeferredBudget);
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kDeferredBudget);
  auto stats = sched.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.deferred_budget, 2u);
  EXPECT_EQ(counter("carousel_repair_deferred_budget_total"), 2u);
  // The budget was enforced, never exceeded: no server shipped more than
  // its per-window allowance.
  EXPECT_EQ(stats.max_window_egress, std::uint64_t{block});
  EXPECT_LE(stats.max_window_egress, ropts.server_egress_budget);

  // A fresh window un-parks the queue.
  sched.reset_budget_window();
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kDispatched);
  EXPECT_EQ(sched.stats().completed, 2u);
  EXPECT_EQ(store.read_file(1, file_a.size()), file_a);
  EXPECT_EQ(store.read_file(2, file_b.size()), file_b);
}

TEST_F(RepairSchedulerTest, MsrRepairSpreadsChunksAndHonorsTheBudget) {
  make_fleet(12);
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 8;
  const std::size_t chunk = block / code.params().alpha();  // d/(d-k+1) path
  CarouselStore store(code, ports_, block, opts());
  auto file_a = random_bytes(code.k() * block, 11);
  auto file_b = random_bytes(code.k() * block, 12);
  store.put_file(1, file_a);
  store.put_file(2, file_b);

  RepairScheduler::Options ropts;
  ropts.server_egress_budget = chunk;  // one helper chunk per window
  ropts.budget_window = std::chrono::hours(1);
  RepairScheduler sched(store, ropts);

  store.drop_block(1, 0, 0);
  store.drop_block(2, 0, 0);
  sched.enqueue({1, 0, 0}, RepairScheduler::Kind::kRepair, 1);
  sched.enqueue({2, 0, 0}, RepairScheduler::Kind::kRepair, 1);

  // The MSR heal fans one chunk out of each of d = 10 helpers; with an
  // 11-survivor stripe that saturates all but one server's window, so the
  // second heal must wait for a fresh window.
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kDispatched);
  EXPECT_EQ(store.verify_block(1, 0, 0), BlockState::kOk);
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kDeferredBudget);
  auto stats = sched.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GE(stats.deferred_budget, 1u);
  // No helper ever shipped more than one chunk in the window, and the
  // newcomer swallowed exactly one block.
  EXPECT_EQ(stats.max_window_egress, std::uint64_t{chunk});
  EXPECT_EQ(stats.max_window_ingress, std::uint64_t{block});
  EXPECT_EQ(gauge("carousel_repair_max_window_egress_bytes"),
            static_cast<double>(chunk));

  sched.reset_budget_window();
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kDispatched);
  EXPECT_EQ(sched.stats().completed, 2u);
  EXPECT_EQ(store.read_file(1, file_a.size()), file_a);
  EXPECT_EQ(store.read_file(2, file_b.size()), file_b);
}

TEST_F(RepairSchedulerTest, StoreHonorsACustomHelperChoice) {
  // The policy seam itself: any d distinct survivors must work, so a
  // policy that picks the *last* d still repairs at optimal traffic.
  make_fleet(12);
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block = code.s() * 8;
  CarouselStore store(code, ports_, block, opts());
  auto file = random_bytes(code.k() * block, 13);
  store.put_file(1, file);

  std::atomic<std::size_t> calls{0};
  store.set_helper_policy(
      [&](const std::vector<CarouselStore::HelperCandidate>& cands,
          std::size_t want, std::size_t) {
        ++calls;
        std::vector<std::size_t> picked;
        for (std::size_t i = cands.size(); i-- > 0 && picked.size() < want;)
          picked.push_back(cands[i].index);
        return picked;
      });
  store.drop_block(1, 0, 0);
  const std::uint64_t fetched = store.repair_block(1, 0, 0);
  EXPECT_GE(calls.load(), 1u);
  // Still the paper's optimal d/(d-k+1) = 2 block sizes on the wire.
  EXPECT_EQ(fetched, std::uint64_t{2} * block);
  EXPECT_EQ(store.read_file(1, file.size()), file);

  // A broken policy must not break repair: fall back to the first d.
  store.set_helper_policy(
      [](const std::vector<CarouselStore::HelperCandidate>&, std::size_t,
         std::size_t) { return std::vector<std::size_t>{0, 0, 0}; });
  store.drop_block(1, 0, 3);
  EXPECT_EQ(store.repair_block(1, 0, 3), std::uint64_t{2} * block);
  EXPECT_EQ(store.read_file(1, file.size()), file);
}

// ---- Admission control ----------------------------------------------------

TEST_F(RepairSchedulerTest, ForegroundP99BacksRepairsOffAndRampsBack) {
  make_fleet(6);
  codes::Carousel code(6, 4, 4, 6);
  const std::size_t block = code.s() * 16;
  CarouselStore store(code, ports_, block, opts());
  auto file = random_bytes(code.k() * block, 14);
  store.put_file(1, file);

  RepairScheduler::Options ropts;
  ropts.max_concurrent = 2;
  ropts.p99_budget = std::chrono::milliseconds(50);
  RepairScheduler sched(store, ropts);
  auto& foreground = registry_.histogram("carousel_store_read_seconds");

  // Two breached windows halve the allowed concurrency 2 -> 1 -> 0.
  for (int i = 0; i < 100; ++i) foreground.observe(0.5);
  sched.poll_admission();
  EXPECT_EQ(sched.stats().allowed, 1u);
  for (int i = 0; i < 100; ++i) foreground.observe(0.5);
  sched.poll_admission();
  auto stats = sched.stats();
  EXPECT_EQ(stats.allowed, 0u);
  EXPECT_EQ(stats.backoffs, 2u);
  EXPECT_EQ(counter("carousel_repair_backoffs_total"), 2u);
  EXPECT_GT(gauge("carousel_repair_foreground_p99_ms"), 50.0);

  // Ordinary work is parked while fully backed off...
  store.drop_block(1, 0, 0);
  sched.enqueue({1, 0, 0}, RepairScheduler::Kind::kRepair, 1);
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kDeferredBackoff);
  EXPECT_GE(sched.stats().deferred_backoff, 1u);

  // ...but a stripe at the erasure limit (criticality >= n-k = 2) is an
  // emergency: durability outranks politeness.
  sched.enqueue({1, 0, 0}, RepairScheduler::Kind::kRepair, 2);
  EXPECT_EQ(sched.step(), RepairScheduler::StepResult::kDispatched);
  stats = sched.stats();
  EXPECT_EQ(stats.emergencies, 1u);
  EXPECT_EQ(stats.completed, 1u);

  // Healthy windows ramp allowed concurrency back up by one each.
  for (int i = 0; i < 100; ++i) foreground.observe(0.001);
  sched.poll_admission();
  EXPECT_EQ(sched.stats().allowed, 1u);
  sched.poll_admission();  // no new observations at all is also healthy
  stats = sched.stats();
  EXPECT_EQ(stats.allowed, 2u);
  EXPECT_EQ(stats.ramps, 2u);
  EXPECT_EQ(counter("carousel_repair_ramps_total"), 2u);
}

// ---- Background drain, rehome fan-in, and the add_server race -------------

TEST_F(RepairSchedulerTest, RehomeServerEnqueuesInsteadOfHealingInline) {
  make_fleet(6);
  codes::Carousel code(6, 4, 4, 6);
  const std::size_t block = code.s() * 16;
  CarouselStore store(code, ports_, block, opts());
  BlockServer spare;
  const std::size_t spare_id = store.add_server(spare.port());
  auto file_a = random_bytes(code.k() * block, 15);
  auto file_b = random_bytes(code.k() * block, 16);
  store.put_file(1, file_a);
  store.put_file(2, file_b);
  RepairScheduler sched(store);

  kill(3);
  auto report = store.rehome_server(3);
  EXPECT_EQ(report.enqueued, 2u);  // block 3 of each file's stripe
  EXPECT_EQ(report.rehomed, 0u);   // nothing healed inline
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(sched.stats().queue_depth, 2u);

  while (sched.step() == RepairScheduler::StepResult::kDispatched) {
  }
  EXPECT_EQ(sched.stats().completed, 2u);
  EXPECT_EQ(store.blocks_on(3).size(), 0u);
  EXPECT_EQ(store.blocks_on(spare_id).size(), 2u);
  EXPECT_EQ(store.read_file(1, file_a.size()), file_a);
  EXPECT_EQ(store.read_file(2, file_b.size()), file_b);
}

TEST_F(RepairSchedulerTest, AddServerRacesAnActiveDrain) {
  make_fleet(6);
  codes::Carousel code(6, 4, 4, 6);
  const std::size_t block = code.s() * 16;
  CarouselStore store(code, ports_, block, opts());
  std::vector<std::vector<Byte>> files;
  for (std::uint32_t f = 1; f <= 3; ++f) {
    files.push_back(random_bytes(code.k() * block, 20 + f));
    store.put_file(f, files.back());
  }

  RepairScheduler::Options ropts;
  ropts.max_concurrent = 2;
  ropts.workers = 2;
  RepairScheduler sched(store, ropts);

  // Kill a server and start draining its rehomes *before* any spare
  // exists: the first attempts fail (no placement candidate), and spare
  // registration races the drain's store traffic.
  kill(2);
  EXPECT_EQ(sched.enqueue_server(2), 3u);
  sched.start();
  EXPECT_TRUE(sched.running());
  sched.start();  // idempotent

  BlockServer spare;
  std::thread registrar([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    store.add_server(spare.port());
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    sched.wait_idle(std::chrono::milliseconds(500));
    if (store.blocks_on(2).empty()) break;
    // Failed items left the queue; keep feeding the drain until the spare
    // has absorbed every victim (what a scrubber sweep does continuously).
    sched.enqueue_server(2);
  }
  registrar.join();
  sched.stop();
  EXPECT_FALSE(sched.running());

  EXPECT_EQ(store.blocks_on(2).size(), 0u);
  auto stats = sched.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_LE(stats.peak_running, ropts.max_concurrent);
  EXPECT_EQ(gauge("carousel_repair_running"), 0.0);
  for (std::uint32_t f = 1; f <= 3; ++f)
    EXPECT_EQ(store.read_file(f, files[f - 1].size()), files[f - 1]);
}

TEST_F(RepairSchedulerTest, ScrubberEnqueuesDeadHomesAsRehomes) {
  make_fleet(6);
  codes::Carousel code(6, 4, 4, 6);
  const std::size_t block = code.s() * 16;
  CarouselStore store(code, ports_, block, opts());
  BlockServer spare;
  const std::size_t spare_id = store.add_server(spare.port());
  auto file = random_bytes(code.k() * block, 31);
  store.put_file(1, file);
  HealthMonitor monitor(store, fast_monitor());
  RepairScheduler sched(store);
  Scrubber::Options sopts;
  sopts.monitor = &monitor;
  sopts.scheduler = &sched;
  Scrubber scrubber(store, sopts);

  kill(4);
  monitor.probe_once();
  monitor.probe_once();
  ASSERT_EQ(monitor.state_of(4), ServerState::kDead);

  auto sweep = scrubber.run_once();
  EXPECT_EQ(sweep.enqueued, 1u);
  EXPECT_EQ(sweep.rehomes, 0u);  // the sweep itself moved nothing
  auto head = sched.peek();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->kind, RepairScheduler::Kind::kRehome);

  while (sched.step() == RepairScheduler::StepResult::kDispatched) {
  }
  EXPECT_EQ(store.blocks_on(4).size(), 0u);
  EXPECT_EQ(store.blocks_on(spare_id).size(), 1u);
  EXPECT_EQ(store.read_file(1, file.size()), file);

  auto quiet = scrubber.run_once();
  EXPECT_EQ(quiet.ok, quiet.blocks_checked);
  EXPECT_EQ(quiet.enqueued, 0u);
}

// ---- Shutdown discipline ---------------------------------------------------

// Regression: stop() used to join the dispatcher handle outside the mutex,
// so two concurrent stop() calls could both pass the dispatcher_running_
// check and join the same std::thread twice (std::terminate) — a race TSan
// sees on the handle.  The fix claims the handle under the lock; exactly
// one stopper joins it.
TEST_F(RepairSchedulerTest, ConcurrentStopsJoinTheDispatcherExactlyOnce) {
  make_fleet(6);
  codes::Carousel code(6, 4, 4, 6);
  const std::size_t block = code.s() * 8;
  CarouselStore store(code, ports_, block, opts());
  store.put_file(1, random_bytes(code.k() * block, 41));
  RepairScheduler::Options sopts;
  sopts.tick = std::chrono::milliseconds(1);
  for (int round = 0; round < 5; ++round) {
    RepairScheduler sched(store, sopts);
    sched.start();
    sched.start();  // idempotent
    EXPECT_TRUE(sched.running());
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t)
      stoppers.emplace_back([&sched] { sched.stop(); });
    for (auto& s : stoppers) s.join();
    EXPECT_FALSE(sched.running());
    sched.stop();  // idempotent after the storm
  }
}

}  // namespace
}  // namespace carousel::net
