// Scenario: a client fetches a large object from erasure-coded storage.
// With systematic RS it can stream from k servers; with Carousel it streams
// from p, and when a server dies mid-deployment it swaps in a parity server
// for the lost one and decodes only that slice (paper §VII, Fig. 11).
//
// This example does it with real bytes (storage::ErasureFile) and then
// prices the same scenario in simulated wall-clock time on a bandwidth-
// capped cluster.
//
//   ./build/examples/parallel_download

#include <cstdio>
#include <random>
#include <vector>

#include "hdfs/dfs.h"
#include "storage/erasure_file.h"

using namespace carousel;
using codes::Byte;

int main() {
  // --- Real bytes: a 24 MiB object under (12,6,10,10) -----------------------
  codes::Carousel code(12, 6, 10, 10);
  const std::size_t block_bytes = code.s() * (512 << 10);  // 2.5 MiB blocks
  std::vector<Byte> object(6 * block_bytes - 12345);
  std::mt19937 rng(99);
  for (auto& b : object) b = static_cast<Byte>(rng());

  storage::ErasureFile ef(code, object, block_bytes);
  std::printf("object: %.1f MiB in %zu stripe(s), %zu blocks of %.1f MiB\n",
              object.size() / 1048576.0, ef.stripes(), code.n(),
              block_bytes / 1048576.0);

  codes::IoStats healthy{};
  bool ok = ef.read_all(&healthy) == object;
  std::printf("healthy parallel read from %zu servers: %s, fetched %.1f MiB "
              "(exactly the object size)\n",
              code.p(), ok ? "bytes match" : "MISMATCH",
              healthy.bytes_read / 1048576.0);

  ef.fail_block_index(2);  // server holding block 2 of every stripe dies
  codes::IoStats degraded{};
  ok = ef.read_all(&degraded) == object;
  std::printf("degraded read (block 2 lost, parity stand-in): %s, still "
              "%zu parallel streams, fetched %.1f MiB\n",
              ok ? "bytes match" : "MISMATCH", degraded.sources / ef.stripes(),
              degraded.bytes_read / 1048576.0);

  auto repair = ef.repair_block(0, 2);
  std::printf("background repair of block 2: %.2f block sizes of traffic "
              "from %zu helpers; integrity check: %s\n",
              double(repair.bytes_read) / double(block_bytes), repair.sources,
              ef.verify() ? "clean" : "CORRUPT");

  // --- Simulated wall-clock on a 300 Mbps-capped cluster -------------------
  hdfs::ClusterConfig cfg;
  cfg.node_egress_bps = hdfs::mbps(300);
  cfg.client_ingress_bps = hdfs::mbps(2500);
  const double file = 6.0 * 512 * hdfs::kMB;

  auto time_read = [&](codes::CodeParams params, bool fail) {
    hdfs::Cluster cluster(cfg);
    auto f = hdfs::DfsFile::coded(cluster, params, file, 512 * hdfs::kMB);
    if (fail) f.fail_block_index(2);
    return hdfs::parallel_read(cluster, f, 200 * hdfs::kMB).seconds;
  };
  std::printf("\nsimulated 3 GB fetch, 300 Mbps per server:\n");
  std::printf("  RS (12,6):             %5.1fs healthy, %5.1fs degraded\n",
              time_read({12, 6, 6, 6}, false), time_read({12, 6, 6, 6}, true));
  std::printf("  Carousel (12,6,10,10): %5.1fs healthy, %5.1fs degraded\n",
              time_read({12, 6, 10, 10}, false),
              time_read({12, 6, 10, 10}, true));
  return 0;
}
