// Scenario: a storage operator's week.  Servers fail one after another; the
// system repairs each at MSR-optimal traffic, keeps serving parallel reads
// throughout, and survives the worst case of n-k simultaneous losses.
//
//   ./build/examples/failure_recovery

#include <cstdio>
#include <random>
#include <vector>

#include "storage/erasure_file.h"

using namespace carousel;
using codes::Byte;

int main() {
  codes::Carousel code(12, 6, 10, 12);
  const std::size_t block_bytes = code.s() * (128 << 10);
  std::vector<Byte> object(2 * 6 * block_bytes);  // two stripes
  std::mt19937 rng(2024);
  for (auto& b : object) b = static_cast<Byte>(rng());
  storage::ErasureFile ef(code, object, block_bytes);

  std::printf("stored %.1f MiB as %zu stripes x %zu blocks, tolerance "
              "n-k = %zu losses per stripe\n\n",
              object.size() / 1048576.0, ef.stripes(), code.n(),
              code.n() - code.k());

  double total_repair_blocks = 0;
  std::mt19937 failure_rng(5);
  std::vector<std::size_t> victims = {3, 9, 0, 7};
  for (std::size_t day = 0; day < victims.size(); ++day) {
    std::size_t victim = victims[day];
    ef.fail_block_index(victim);
    bool readable = ef.read_all() == object;
    std::printf("day %zu: lost block %2zu on every stripe; reads still "
                "correct: %s\n",
                day + 1, victim, readable ? "yes" : "NO");
    for (std::size_t s = 0; s < ef.stripes(); ++s) {
      auto stats = ef.repair_block(s, victim);
      total_repair_blocks += double(stats.bytes_read) / double(block_bytes);
    }
    std::printf("        repaired at %.2f block sizes per block (optimal "
                "d/(d-k+1) = %.2f; RS would pay %zu)\n",
                double(code.params().repair_traffic_blocks()),
                code.params().repair_traffic_blocks(), code.k());
  }
  std::printf("\ntotal repair traffic: %.1f block sizes for %zu repairs "
              "(RS: %.0f)\n",
              total_repair_blocks, victims.size() * ef.stripes(),
              double(victims.size() * ef.stripes() * code.k()));

  // Worst case: n-k simultaneous losses, including data-carrying blocks.
  for (std::size_t idx : {1u, 4u, 6u, 8u, 10u, 11u}) ef.fail_block_index(idx);
  bool ok = ef.read_all() == object;
  std::printf("catastrophe drill: 6 of 12 blocks gone, file still decodes: "
              "%s\n", ok ? "yes" : "NO");
  std::printf("integrity after all repairs: %s\n",
              ef.verify() ? "clean" : "CORRUPT");
  return ok ? 0 : 1;
}
