// The paper's prototype story, runnable on loopback: a fleet of block
// servers, a Carousel-striped file, server losses, degraded parallel reads
// and MSR-optimal repair — with every byte moving over real TCP sockets.
//
//   ./build/examples/distributed_store

#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "net/block_server.h"
#include "net/store.h"

using namespace carousel;
using codes::Byte;

int main() {
  // A 12-server fleet on ephemeral loopback ports.
  std::vector<std::unique_ptr<net::BlockServer>> servers;
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 12; ++i) {
    servers.push_back(std::make_unique<net::BlockServer>());
    ports.push_back(servers.back()->port());
  }
  std::printf("started 12 block servers on 127.0.0.1 (ports %u..)\n\n",
              ports.front());

  codes::Carousel code(12, 6, 10, 10);
  const std::size_t block = code.s() * (64 << 10);  // 320 KiB blocks
  net::CarouselStore store(code, ports, block);

  std::vector<Byte> file(2 * code.k() * block - 3141);
  std::mt19937 rng(1);
  for (auto& b : file) b = static_cast<Byte>(rng());
  std::size_t stripes = store.put_file(42, file);
  std::printf("stored %.1f MiB as %zu stripes x 12 blocks, one block per "
              "server, 10 of 12 carrying original data\n",
              file.size() / 1048576.0, stripes);

  std::uint64_t t0 = store.bytes_received();
  bool ok = store.read_file(42, file.size()) == file;
  std::printf("parallel read from 10 servers: %s (%.1f MiB over the wire — "
              "exactly the file)\n",
              ok ? "bytes match" : "MISMATCH",
              (store.bytes_received() - t0) / 1048576.0);

  // Two servers with original data go dark.
  servers[2]->stop();
  servers[5]->stop();
  std::printf("\nservers 2 and 5 stopped.\n");
  // Their clients would now fail; emulate the metadata path by dropping the
  // blocks from the store's view instead (servers hold one block per
  // stripe).  A production coordinator reconnects; here we restart them
  // empty to keep the sockets simple.
  servers[2] = std::make_unique<net::BlockServer>(ports[2]);
  servers[5] = std::make_unique<net::BlockServer>(ports[5]);

  t0 = store.bytes_received();
  ok = store.read_file(42, file.size()) == file;
  std::printf("degraded read (parity stand-ins via server-side PROJECT): %s "
              "(%.1f MiB over the wire — still k/p per source)\n",
              ok ? "bytes match" : "MISMATCH",
              (store.bytes_received() - t0) / 1048576.0);

  std::uint64_t traffic = 0;
  for (std::size_t s = 0; s < stripes; ++s) {
    traffic += store.repair_block(42, static_cast<std::uint32_t>(s), 2);
    traffic += store.repair_block(42, static_cast<std::uint32_t>(s), 5);
  }
  std::printf("repaired both servers' blocks: %.1f MiB fetched = %.2f block "
              "sizes per repair (RS would need %zu)\n",
              traffic / 1048576.0,
              double(traffic) / (2.0 * stripes * block), code.k());

  ok = store.read_file(42, file.size()) == file;
  std::printf("final read after recovery: %s\n",
              ok ? "bytes match" : "MISMATCH");
  return ok ? 0 : 1;
}
