// Scenario: an operator picks a storage layout for a new cluster.  The
// constraints: at most 2x storage overhead, yearly block MTTF of 4 years,
// a 1 Gbps repair channel, and analytics jobs that want as much data
// parallelism as possible.  This example sweeps candidate layouts and
// prints durability (reliability module), repair cost (code parameters) and
// parallelism, showing why the paper's (12,6,10,12) Carousel wins.
//
//   ./build/examples/durability_planner

#include <cstdio>

#include "codes/params.h"
#include "reliability/mttdl.h"

using namespace carousel;

namespace {

constexpr double kYear = 365.25 * 24 * 3600;
constexpr double kBlockBytes = 256.0 * 1024 * 1024;
constexpr double kRepairBps = 125.0 * 1024 * 1024;

struct Candidate {
  const char* name;
  codes::CodeParams params;
  double overhead;
  std::size_t parallelism;
};

}  // namespace

int main() {
  Candidate candidates[] = {
      {"2x replication", {2, 1, 1, 1}, 2.0, 2},
      {"3x replication", {3, 1, 1, 1}, 3.0, 3},
      {"RS (12,6)", {12, 6, 6, 6}, 2.0, 6},
      {"MSR (12,6,10)", {12, 6, 10, 6}, 2.0, 6},
      {"Carousel (12,6,10,12)", {12, 6, 10, 12}, 2.0, 12},
  };

  std::printf("layout                  overhead  repair    parallel  MTTDL "
              "(years)   fits <=2x?\n");
  for (const auto& c : candidates) {
    reliability::Environment env;
    env.block_failure_rate = 1.0 / (4 * kYear);
    env.repair_seconds =
        c.params.repair_traffic_blocks() * kBlockBytes / kRepairBps;
    double mttdl =
        reliability::mds_stripe_mttdl(c.params.n, c.params.k, env) / kYear;
    std::printf("%-24s %6.1fx %6.1f blk %9zu %13.2e   %s\n", c.name,
                c.overhead, c.params.repair_traffic_blocks(), c.parallelism,
                mttdl, c.overhead <= 2.0 ? "yes" : "no");
  }
  std::printf(
      "\nverdict: within the 2x budget, Carousel (12,6,10,12) matches MSR's "
      "durability (3x-faster repair than RS\ncompounds over n-k=6 tolerated "
      "failures) and doubles the data parallelism of every MDS "
      "alternative.\n");
  return 0;
}
