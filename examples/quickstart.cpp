// Quickstart: encode, read in parallel, survive failures, repair cheaply.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks the whole public API on the paper's Hadoop configuration, a
// (12, 6, 10, 12) Carousel code: 6 data blocks' worth of input spread over
// 12 blocks, any 6 decode, repair contacts 10 helpers for 2 block-sizes of
// traffic instead of RS's 6.

#include <cstdio>
#include <numeric>
#include <random>
#include <vector>

#include "codes/carousel.h"

using namespace carousel::codes;

int main() {
  Carousel code(/*n=*/12, /*k=*/6, /*d=*/10, /*p=*/12);
  std::printf("Carousel %s: %zu units/block, %zu of them original data\n",
              code.params().to_string().c_str(), code.s(),
              code.data_units_per_block());

  // --- Encode one stripe -------------------------------------------------
  const std::size_t block_bytes = code.s() * 4096;
  std::vector<Byte> data(code.k() * block_bytes);
  std::mt19937 rng(7);
  for (auto& b : data) b = static_cast<Byte>(rng());

  std::vector<Byte> store(code.n() * block_bytes);
  std::vector<std::span<Byte>> blocks;
  for (std::size_t i = 0; i < code.n(); ++i)
    blocks.emplace_back(store.data() + i * block_bytes, block_bytes);
  code.encode(data, blocks);
  std::printf("encoded %zu KiB into %zu blocks of %zu KiB (1.5x more than "
              "the data, 2x less than 3-way replication)\n",
              data.size() / 1024, code.n(), block_bytes / 1024);

  // --- Parallel read: every block serves original data -------------------
  std::vector<std::span<const Byte>> views(blocks.begin(), blocks.end());
  std::vector<Byte> out(data.size());
  code.gather_data(std::span(views).subspan(0, code.p()), out);
  std::printf("parallel gather from all %zu blocks: %s\n", code.p(),
              out == data ? "bytes match" : "MISMATCH");

  // --- MDS: any k blocks decode ------------------------------------------
  std::vector<std::size_t> ids = {1, 3, 5, 7, 9, 11};
  std::vector<std::span<const Byte>> chosen;
  for (std::size_t id : ids) chosen.push_back(views[id]);
  std::fill(out.begin(), out.end(), 0);
  code.decode(ids, chosen, out);
  std::printf("MDS decode from blocks {1,3,5,7,9,11}: %s\n",
              out == data ? "bytes match" : "MISMATCH");

  // --- Repair at MSR-optimal traffic --------------------------------------
  const std::size_t failed = 4;
  std::vector<std::size_t> helpers;
  for (std::size_t h = 0; h < code.n() && helpers.size() < code.d(); ++h)
    if (h != failed) helpers.push_back(h);
  const std::size_t ub = block_bytes / code.s();
  std::vector<std::vector<Byte>> chunk_store;
  std::vector<std::span<const Byte>> chunks;
  for (std::size_t h : helpers) {
    chunk_store.emplace_back(code.helper_chunk_units() * ub);
    code.helper_compute(h, failed, views[h], chunk_store.back());
  }
  for (auto& c : chunk_store) chunks.emplace_back(c);
  std::vector<Byte> rebuilt(block_bytes);
  auto stats = code.newcomer_compute(failed, helpers, chunks, rebuilt);
  bool ok = std::equal(rebuilt.begin(), rebuilt.end(), views[failed].begin());
  std::printf("repaired block %zu from %zu helpers: %s, traffic %.2f block "
              "sizes (RS would need %zu)\n",
              failed, stats.sources, ok ? "bytes match" : "MISMATCH",
              double(stats.bytes_read) / double(block_bytes), code.k());
  return ok && out == data ? 0 : 1;
}
