// Scenario: you run nightly analytics over a 12 GB click log stored with
// erasure coding, and map tasks are the bottleneck (the paper's motivating
// workload).  This example sizes the Carousel parallelism parameter p on the
// simulated cluster: it sweeps p, prints the map/reduce/job breakdown, and
// reports the storage cost of each option against replication.
//
//   ./build/examples/mapreduce_speedup

#include <cstdio>
#include <string>

#include "mapred/job.h"

using namespace carousel;
using hdfs::kMB;

int main() {
  hdfs::ClusterConfig cfg;
  cfg.nodes = 30;
  cfg.disk_read_bps = 200 * kMB;

  const double block = 512 * kMB;
  const double file = 24 * block;  // 12 GB -> 4 stripes of (12,6)

  // A log-scan job: map-heavy, 10% of the input survives filtering into the
  // shuffle, modest aggregation at the reducers.
  mapred::Workload scan{.name = "click-scan",
                        .map_cpu_s_per_mb = 0.008,
                        .reduce_cpu_s_per_mb = 0.002,
                        .map_output_ratio = 0.10,
                        .task_overhead_s = 1.0};

  std::printf("click-scan over 12 GB, 30-node cluster, (12,6,10,p) Carousel\n\n");
  std::printf("%-18s %6s %8s %10s %8s %9s\n", "layout", "maps", "map(s)",
              "reduce(s)", "job(s)", "storage");

  double rs_job = 0;
  for (std::size_t p : {6u, 8u, 10u, 12u}) {
    hdfs::Cluster cluster(cfg);
    auto f = hdfs::DfsFile::coded(cluster, {12, 6, 10, p}, file, block);
    auto r = mapred::run_job(cluster, f, scan, mapred::JobConfig{});
    if (p == 6) rs_job = r.job_s;
    std::printf("%-18s %6zu %8.1f %10.1f %8.1f %8.1fx\n",
                ("Carousel p=" + std::to_string(p)).c_str(),
                r.map_tasks, r.map_avg_s, r.reduce_avg_s, r.job_s,
                f.stored_bytes() / file);
  }
  for (std::size_t reps : {2u, 3u}) {
    hdfs::Cluster cluster(cfg);
    auto f = hdfs::DfsFile::replicated(cluster, file, block, reps);
    auto r = mapred::run_job(cluster, f, scan, mapred::JobConfig{});
    std::printf("%-18s %6zu %8.1f %10.1f %8.1f %8.1fx\n",
                (std::to_string(reps) + "x replication").c_str(),
                r.map_tasks, r.map_avg_s, r.reduce_avg_s, r.job_s,
                f.stored_bytes() / file);
  }

  hdfs::Cluster cluster(cfg);
  auto best = hdfs::DfsFile::coded(cluster, {12, 6, 10, 12}, file, block);
  auto r = mapred::run_job(cluster, best, scan, mapred::JobConfig{});
  std::printf("\np=12 cuts the job from %.1fs to %.1fs (%.0f%%) at 2x "
              "storage — 2x-replication speed, 3x-replication durability.\n",
              rs_job, r.job_s, 100 * (1 - r.job_s / rs_job));
  return 0;
}
