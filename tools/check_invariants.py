#!/usr/bin/env python3
"""Repo-specific invariant lints that clang-tidy cannot express.

Run from anywhere:  python3 tools/check_invariants.py

Rules (see DESIGN.md "Correctness tooling"):

  1. wire-byte conversions — every conversion of a wire byte into the Op or
     Status enums must go through the checked parse_op()/parse_status() in
     src/net/protocol.h.  A raw `static_cast<Op>`/`static_cast<Status>`
     anywhere else in src/ can turn hostile network data into an
     out-of-range enum value (UB the UBSan build traps at runtime; this rule
     catches it at lint time).

  2. metric naming grammar — every metric name literal registered in src/
     follows carousel_<subsystem>_<what>[_unit]: lowercase, underscore-
     separated, at least three segments.  Counters must end in `_total`,
     histograms in `_seconds` (the two unit suffixes the renderers and
     dashboards assume).  Label keys are lowercase identifiers.

  3. CMake option coverage — every CAROUSEL_* cache option defined in any
     CMakeLists.txt is documented in README.md, so no build knob ships
     undocumented.

  4. fsync-before-rename — every rename in the durability layers
     (src/net/persistence.*, src/net/meta_log.*) must be preceded, within
     a few lines, by a flush of the file being renamed.  A rename without
     the flush can publish a block file or metadata snapshot whose bytes
     never reached stable storage — the exact torn-write window the
     crash-recovery tests exist to close.

  5. metric subsystem registry — the <subsystem> segment of every
     registered metric name must come from the known-subsystem list below.
     A typo'd subsystem (carousel_clutser_...) silently forks a metric
     family away from its dashboard; new subsystems are added here
     deliberately, together with their dashboards and alerts.

  6. repair metric provenance — every carousel_repair_* series is minted
     through the scheduler's repair_metric() helper: the quoted prefix
     "carousel_repair_" appears exactly once in src/net/repair_scheduler.cpp
     (inside that helper) and nowhere else in src/, except the read-side
     prefix filter in src/cli/cli.cpp which registers nothing.  A literal
     name registered elsewhere would fork the repair-dashboard family away
     from the scheduler's single naming point.

  7. hedge metric provenance — the hedged-read counter pair
     (carousel_store_hedged_reads_total / carousel_store_hedge_wins_total)
     is minted through the store's hedge_metric() helper: the quoted
     fragment "carousel_store_hedge" appears exactly once in
     src/net/store.cpp (inside that helper) and nowhere else in src/,
     except read-side prefix filters in src/cli/cli.cpp which register
     nothing.  The pair only makes sense together (wins <= hedged); two
     independently spelled literals drifting apart would split it across
     dashboards.

  8. annotated locking only — src/ code locks through the annotated
     wrappers in src/util/sync.h (util::Mutex / util::MutexLock /
     util::CondVar), never through raw std::mutex, std::lock_guard,
     std::unique_lock, std::scoped_lock or std::condition_variable.  A raw
     primitive is invisible to both the Clang Thread Safety Analysis build
     (CAROUSEL_THREAD_SAFETY=ON) and the runtime lock-rank checker, so a
     deadlock it introduces is caught by neither.  std::once_flag /
     std::call_once (and therefore `#include <mutex>`) stay allowed: they
     are one-shot initialization, not a lock order anyone can invert.

  9. failure-domain plumbing — (a) every carousel_cluster_domain_* gauge is
     minted through the monitor's domain_metric() helper: the quoted prefix
     "carousel_cluster_domain_" appears exactly once in src/net/cluster.cpp
     (inside that helper) and nowhere else in src/.  The domain rollup is
     one family; a literal spelled elsewhere would fork it away from its
     dashboard.  (b) every placement write routes through the domain-
     checked choke point: `set_placement_locked(` appears only in
     src/net/store.{h,cpp}, and src/net/store.cpp references
     domain_fits_locked at least three times (the definition, the candidate
     walk, and the commit re-check).  A placement mutation that bypasses
     the checked setter could stack more than n-k blocks of a stripe into
     one rack — the exact loss a whole-rack failure then turns into data
     loss.

 10. metadata journal provenance — (a) every carousel_meta_* series is
     minted through MetaLog::metric(): the quoted prefix "carousel_meta_"
     appears exactly once in src/net/meta_log.cpp (inside that helper) and
     nowhere else in src/, except read-side filters in src/cli/cli.cpp
     which register nothing.  (b) journal records are minted only through
     the MetaLog append API: `append_record(` appears only in
     src/net/meta_log.{h,cpp}.  A record framed anywhere else could skip
     the fsync-before-publish ordering the crash-recovery story rests on.

Exit status 0 when clean; 1 with one line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

METRIC_NAME = re.compile(r"^carousel_[a-z0-9]+(_[a-z0-9]+)+$")
LABEL_KEY = re.compile(r"^[a-z][a-z0-9_]*$")

# Rule 5: the one list of metric subsystems that exist.  Growing it is a
# deliberate act (new dashboards/alerts), not a side effect of a typo.
KNOWN_SUBSYSTEMS = {
    "client", "cluster", "codec", "gf", "meta", "persist", "repair",
    "scrub", "scrubber", "server", "store", "threadpool",
}


def src_files(*suffixes: str):
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix in suffixes and path.is_file():
            yield path


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def check_wire_casts(problems: list[str]) -> None:
    """Rule 1: no raw static_cast<Op>/<Status> outside src/net/protocol.h."""
    pattern = re.compile(
        r"static_cast<\s*(?:carousel::)?(?:net::)?(Op|Status)\s*>")
    allowed = REPO / "src" / "net" / "protocol.h"
    for path in src_files(".h", ".cpp"):
        if path == allowed:
            continue
        text = path.read_text()
        for m in pattern.finditer(text):
            problems.append(
                f"{path.relative_to(REPO)}:{line_of(text, m.start())}: "
                f"raw static_cast<{m.group(1)}> — wire bytes must go through "
                f"parse_{m.group(1).lower()}() (trusted indices through "
                f"op_from_index())")


def check_metric_names(problems: list[str]) -> None:
    """Rule 2: registered metric names follow the documented grammar."""
    # Kind visible through an obs::labeled(...) wrapper or a direct literal.
    kinded = re.compile(
        r"\b(counter|gauge|histogram)\(\s*(?:obs::)?labeled\(\s*\"([^\"]+)\""
        r"|\b(counter|gauge|histogram)\(\s*\"([^\"]+)\"")
    # Any labeled() call: base name and label key both face the grammar.
    labeled = re.compile(r"\blabeled\(\s*\"([^\"]+)\",\s*\"([^\"]+)\"")
    suffix_rule = {"counter": "_total", "histogram": "_seconds"}
    for path in src_files(".h", ".cpp"):
        text = path.read_text()
        where = lambda m: f"{path.relative_to(REPO)}:{line_of(text, m.start())}"
        for m in kinded.finditer(text):
            kind, name = (m.group(1), m.group(2)) if m.group(1) else \
                         (m.group(3), m.group(4))
            if not METRIC_NAME.match(name):
                problems.append(
                    f"{where(m)}: metric name '{name}' violates the "
                    f"carousel_<subsystem>_<what> grammar")
            want = suffix_rule.get(kind)
            if want and not name.endswith(want):
                problems.append(
                    f"{where(m)}: {kind} '{name}' must end in '{want}'")
        for m in labeled.finditer(text):
            base, key = m.group(1), m.group(2)
            if not METRIC_NAME.match(base):
                problems.append(
                    f"{where(m)}: labeled base '{base}' violates the "
                    f"carousel_<subsystem>_<what> grammar")
            if not LABEL_KEY.match(key):
                problems.append(
                    f"{where(m)}: label key '{key}' is not a lowercase "
                    f"identifier")


def check_metric_subsystems(problems: list[str]) -> None:
    """Rule 5: every registered metric's subsystem is a known one."""
    name_literal = re.compile(r"\"(carousel_[a-z0-9_]+)\"")
    for path in src_files(".h", ".cpp"):
        text = path.read_text()
        for m in name_literal.finditer(text):
            name = m.group(1)
            if not METRIC_NAME.match(name):
                continue  # rule 2 already reports the grammar violation
            subsystem = name.split("_")[1]
            if subsystem not in KNOWN_SUBSYSTEMS:
                problems.append(
                    f"{path.relative_to(REPO)}:{line_of(text, m.start())}: "
                    f"metric '{name}' uses unknown subsystem '{subsystem}' — "
                    f"typo, or add it to KNOWN_SUBSYSTEMS in "
                    f"tools/check_invariants.py deliberately")


def check_cmake_options(problems: list[str]) -> None:
    """Rule 3: every CAROUSEL_* CMake option is documented in README.md."""
    defined: dict[str, str] = {}
    pattern = re.compile(
        r"(?:option\(\s*(CAROUSEL_\w+)|set\(\s*(CAROUSEL_\w+)[^)]*?\bCACHE\b)",
        re.DOTALL)
    for path in sorted(REPO.rglob("CMakeLists.txt")):
        if "build" in path.parts:
            continue
        for m in pattern.finditer(path.read_text()):
            name = m.group(1) or m.group(2)
            defined.setdefault(name, str(path.relative_to(REPO)))
    readme = (REPO / "README.md").read_text()
    for name, origin in sorted(defined.items()):
        if name not in readme:
            problems.append(
                f"{origin}: CMake option {name} is not documented in "
                f"README.md")


def check_fsync_before_rename(problems: list[str]) -> None:
    """Rule 4: renames in the durability layers flush the source first."""
    rename = re.compile(r"\brename\s*\(")
    flush = re.compile(r"\b(flush_file|fsync)\b")
    window = 8  # lines above the rename that must contain the flush
    for path in src_files(".h", ".cpp"):
        if path.stem not in {"persistence", "meta_log"}:
            continue
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            # Comments mentioning the discipline are not renames.
            if line.lstrip().startswith(("//", "*", "/*")):
                continue
            if not rename.search(line):
                continue
            preceding = lines[max(0, i - window):i]
            # Comments don't flush anything: only code lines count.
            code = [l for l in preceding
                    if not l.lstrip().startswith(("//", "*", "/*"))]
            if not any(flush.search(l) for l in code):
                problems.append(
                    f"{path.relative_to(REPO)}:{i + 1}: rename without an "
                    f"fsync of the source within {window} lines — a crash "
                    f"could publish unflushed bytes")


def check_repair_metric_provenance(problems: list[str]) -> None:
    """Rule 6: carousel_repair_* names are minted only by repair_metric()."""
    helper = REPO / "src" / "net" / "repair_scheduler.cpp"
    # Read-side consumers that filter on the prefix but register nothing.
    readers = {REPO / "src" / "cli" / "cli.cpp"}
    literal = re.compile(r"\"[^\"\n]*carousel_repair_[^\"\n]*\"")
    for path in src_files(".h", ".cpp"):
        text = path.read_text()
        hits = list(literal.finditer(text))
        if path == helper:
            if len(hits) != 1:
                problems.append(
                    f"{path.relative_to(REPO)}: expected exactly one quoted "
                    f"\"carousel_repair_\" (the repair_metric() helper), "
                    f"found {len(hits)} — route every series through the "
                    f"helper")
            continue
        if path in readers:
            continue
        for m in hits:
            problems.append(
                f"{path.relative_to(REPO)}:{line_of(text, m.start())}: "
                f"carousel_repair_* literal outside repair_metric() — mint "
                f"repair series through the helper in "
                f"src/net/repair_scheduler.cpp")


def check_hedge_metric_provenance(problems: list[str]) -> None:
    """Rule 7: carousel_store_hedge* names are minted only by hedge_metric()."""
    helper = REPO / "src" / "net" / "store.cpp"
    # Read-side consumers that filter on the prefix but register nothing.
    readers = {REPO / "src" / "cli" / "cli.cpp"}
    literal = re.compile(r"\"[^\"\n]*carousel_store_hedge[^\"\n]*\"")
    for path in src_files(".h", ".cpp"):
        text = path.read_text()
        hits = list(literal.finditer(text))
        if path == helper:
            if len(hits) != 1:
                problems.append(
                    f"{path.relative_to(REPO)}: expected exactly one quoted "
                    f"\"carousel_store_hedge\" (the hedge_metric() helper), "
                    f"found {len(hits)} — mint both hedge counters through "
                    f"the helper")
            continue
        if path in readers:
            continue
        for m in hits:
            problems.append(
                f"{path.relative_to(REPO)}:{line_of(text, m.start())}: "
                f"carousel_store_hedge* literal outside hedge_metric() — "
                f"mint the hedge counter pair through the helper in "
                f"src/net/store.cpp")


def check_raw_locking(problems: list[str]) -> None:
    """Rule 8: src/ locks only through the util/sync.h wrappers."""
    allowed = REPO / "src" / "util" / "sync.h"
    # std::once_flag/std::call_once are deliberately not matched; neither is
    # `#include <mutex>` (which once_flag needs).
    raw = re.compile(
        r"\bstd::(mutex|lock_guard|unique_lock|scoped_lock"
        r"|condition_variable(?:_any)?)\b")
    for path in src_files(".h", ".cpp"):
        if path == allowed:
            continue
        text = path.read_text()
        for m in raw.finditer(text):
            problems.append(
                f"{path.relative_to(REPO)}:{line_of(text, m.start())}: "
                f"raw std::{m.group(1)} — use the annotated util::Mutex/"
                f"MutexLock/CondVar wrappers from src/util/sync.h so the "
                f"thread-safety analysis and the lock-rank checker see it")


def check_domain_plumbing(problems: list[str]) -> None:
    """Rule 9: domain gauges and placement writes each have one home."""
    # 9a: the carousel_cluster_domain_* family is minted by domain_metric().
    helper = REPO / "src" / "net" / "cluster.cpp"
    literal = re.compile(r"\"[^\"\n]*carousel_cluster_domain_[^\"\n]*\"")
    for path in src_files(".h", ".cpp"):
        text = path.read_text()
        hits = list(literal.finditer(text))
        if path == helper:
            if len(hits) != 1:
                problems.append(
                    f"{path.relative_to(REPO)}: expected exactly one quoted "
                    f"\"carousel_cluster_domain_\" (the domain_metric() "
                    f"helper), found {len(hits)} — mint the domain rollup "
                    f"family through the helper")
            continue
        for m in hits:
            problems.append(
                f"{path.relative_to(REPO)}:{line_of(text, m.start())}: "
                f"carousel_cluster_domain_* literal outside domain_metric() "
                f"— mint domain gauges through the helper in "
                f"src/net/cluster.cpp")
    # 9b: placement writes route through the domain-checked choke point.
    store = REPO / "src" / "net" / "store.cpp"
    setter = re.compile(r"\bset_placement_locked\s*\(")
    for path in src_files(".h", ".cpp"):
        if path.parent == store.parent and path.stem == "store":
            continue  # declaration in store.h, definition+calls in store.cpp
        text = path.read_text()
        for m in setter.finditer(text):
            problems.append(
                f"{path.relative_to(REPO)}:{line_of(text, m.start())}: "
                f"set_placement_locked outside src/net/store.{{h,cpp}} — "
                f"placement writes belong to the store's domain-checked "
                f"choke point")
    uses = len(re.findall(r"\bdomain_fits_locked\b", store.read_text()))
    if uses < 3:
        problems.append(
            f"src/net/store.cpp: only {uses} domain_fits_locked "
            f"reference(s); expected >= 3 (definition, candidate walk, "
            f"commit re-check) — a placement path has stopped consulting "
            f"the per-domain cap")


def check_meta_journal_provenance(problems: list[str]) -> None:
    """Rule 10: meta metrics and journal records each have one mint point."""
    # 10a: the carousel_meta_* family is minted by MetaLog::metric().
    helper = REPO / "src" / "net" / "meta_log.cpp"
    # Read-side consumers that filter on the prefix but register nothing.
    readers = {REPO / "src" / "cli" / "cli.cpp"}
    literal = re.compile(r"\"[^\"\n]*carousel_meta_[^\"\n]*\"")
    for path in src_files(".h", ".cpp"):
        text = path.read_text()
        hits = list(literal.finditer(text))
        if path == helper:
            if len(hits) != 1:
                problems.append(
                    f"{path.relative_to(REPO)}: expected exactly one quoted "
                    f"\"carousel_meta_\" (the MetaLog::metric() helper), "
                    f"found {len(hits)} — mint every meta series through "
                    f"the helper")
            continue
        if path in readers:
            continue
        for m in hits:
            problems.append(
                f"{path.relative_to(REPO)}:{line_of(text, m.start())}: "
                f"carousel_meta_* literal outside MetaLog::metric() — mint "
                f"meta series through the helper in src/net/meta_log.cpp")
    # 10b: journal records are framed only by the MetaLog append API.
    framer = re.compile(r"\bappend_record\s*\(")
    for path in src_files(".h", ".cpp"):
        if path.stem == "meta_log":
            continue  # declaration in meta_log.h, definition+calls in .cpp
        text = path.read_text()
        for m in framer.finditer(text):
            problems.append(
                f"{path.relative_to(REPO)}:{line_of(text, m.start())}: "
                f"append_record outside src/net/meta_log.{{h,cpp}} — journal "
                f"records are minted only through the MetaLog append API")


def main() -> int:
    problems: list[str] = []
    check_wire_casts(problems)
    check_metric_names(problems)
    check_metric_subsystems(problems)
    check_cmake_options(problems)
    check_fsync_before_rename(problems)
    check_repair_metric_provenance(problems)
    check_hedge_metric_provenance(problems)
    check_raw_locking(problems)
    check_domain_plumbing(problems)
    check_meta_journal_provenance(problems)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"check_invariants: {len(problems)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
