#!/usr/bin/env sh
# Static-analysis gate: the repo-specific invariant lints (always), then
# clang-tidy under the project .clang-tidy with warnings-as-errors (when the
# tool is installed — the container used for tier-1 verification ships only
# gcc, so the clang-tidy half degrades to a loud skip there; CI's lint job
# runs it for real).
#
#   sh tools/lint.sh [build-dir]
#
# The build dir only needs a configure step (compile_commands.json); this
# script runs one if it is missing.
set -e
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

python3 tools/check_invariants.py

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found; skipping the clang-tidy gate" >&2
  echo "lint: OK (invariant lints only)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi

# Every first-party translation unit; headers ride along via
# HeaderFilterRegex in .clang-tidy.
FILES=$(find src tests bench examples tools -name '*.cpp' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
  # shellcheck disable=SC2086  # word-splitting the file list is intended
  run-clang-tidy -quiet -p "$BUILD_DIR" $FILES
else
  for f in $FILES; do
    clang-tidy --quiet -p "$BUILD_DIR" "$f"
  done
fi
echo "lint: OK (invariant lints + clang-tidy)"
