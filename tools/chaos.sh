#!/usr/bin/env sh
# Seeded chaos harness runner.
#
# Drives tests/chaos_test.cpp: a deterministic schedule of server kills,
# restarts, at-rest corruption, injected stalls and crash-injected PUTs
# against a live persistent multi-server store with a HealthMonitor and
# Scrubber attached, asserting after every few events that
#
#   - every acknowledged PUT still reads back bit-exact,
#   - every heal moves exactly the paper-optimal d/(d-k+1) block sizes
#     (or k on the whole-block fallback),
#   - the cluster scrubs fully clean once every server returns.
#
# The schedule is a pure function of the seed, so any failure reproduces
# exactly by re-running with the seed the harness printed.
#
# Usage:
#   sh tools/chaos.sh                 # default seed, 200 events (~30 s)
#   sh tools/chaos.sh 1234            # specific seed
#   sh tools/chaos.sh 1234 1000       # longer schedule
#   CAROUSEL_CHAOS_EVENTS=50 sh tools/chaos.sh   # env knobs work too
set -e
cd "$(dirname "$0")/.."

if [ -n "$1" ]; then
  CAROUSEL_CHAOS_SEED="$1"
  export CAROUSEL_CHAOS_SEED
fi
if [ -n "$2" ]; then
  CAROUSEL_CHAOS_EVENTS="$2"
  export CAROUSEL_CHAOS_EVENTS
fi

cmake -B build -S . >/dev/null
cmake --build build -j --target chaos_test >/dev/null

echo "chaos: seed=${CAROUSEL_CHAOS_SEED:-20260805}" \
     "events=${CAROUSEL_CHAOS_EVENTS:-200}"
./build/tests/chaos_test --gtest_filter='Chaos.*'
