#!/usr/bin/env sh
# Tier-1 verification, mirroring the CI matrix:
#
#   1. full build + test suite (includes the seeded protocol fuzz:
#      >=10k mutated frames against a live server);
#   2. static analysis — tools/lint.sh (clang-tidy when installed, plus the
#      repo-specific invariant lints in tools/check_invariants.py);
#   3. the networked fault-tolerance, observability, protocol-hardening,
#      crash-persistence, metadata-journal and self-healing-cluster tests
#      again under AddressSanitizer (abrupt server death, connection churn,
#      malformed frames, torn-write recovery, re-homing races — where
#      lifetime bugs hide);
#   4. the net + observability + property tests under ThreadSanitizer
#      (client counters, registry instruments and trace rings are read while
#      other threads mutate them; the parallel read fan-out, hedge races and
#      concurrent read_file overlap live here), plus a short chaos schedule
#      under TSan — the foreground hedged reader races kills, restarts and
#      heals — and the whole-rack-down acceptance scenario under TSan (a
#      3-rack fleet loses a full failure domain mid-traffic and must serve
#      every acked byte while re-protecting within the per-rack cap);
#   5. the full suite under UndefinedBehaviorSanitizer with recovery
#      disabled (GF kernels, matrix pipeline, wire decode: where silent UB
#      corrupts data without failing a test);
#   6. a bounded chaos smoke at a fixed seed (~30 s; the full suite already
#      ran the same schedule once — this repeats it against the final build
#      exactly as CI's chaos-smoke job does).  Longer schedules are opt-in:
#      sh tools/chaos.sh <seed> <events>;
#   7. a bounded recovery-storm bench against the live 12+2 fleet, exactly
#      as CI's bench-smoke job runs it: the binary exits non-zero when
#      either its single-server storm or its whole-rack-down storm fails to
#      re-protect, serves a wrong byte, blows its p99 budget, or breaks the
#      per-rack placement invariant (and writes BENCH_recovery_storm.json
#      plus BENCH_rack_down.json);
#   8. a bounded tail-latency bench against a live 12-server fleet with one
#      injected straggler, also as CI's bench-smoke job runs it: the binary
#      exits non-zero unless the hedged p99 beats the unhedged p99 with at
#      least one hedge win (and writes BENCH_tail_latency.json);
#   9. a bounded coordinator-metadata recovery bench, as CI's bench-smoke
#      job runs it: the binary exits non-zero when a cold journal replay
#      diverges from the pre-crash manifest, misses its wall-clock budget,
#      fails to load the compacted snapshot, or misses a torn tail (and
#      writes BENCH_meta_recovery.json);
#  10. when clang++ is installed: the whole tree rebuilt with Clang Thread
#      Safety Analysis promoted to errors (CAROUSEL_THREAD_SAFETY=ON),
#      verifying every GUARDED_BY/REQUIRES/EXCLUDES annotation from
#      util/sync.h statically, plus the sync_test lock-rank suite under the
#      same toolchain — the mirror of CI's thread-safety job.  Skipped
#      (with a note) on GCC-only machines; CI always runs it.
#
#   sh tools/verify.sh
set -e
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j 8

sh tools/lint.sh build

cmake -B build-asan -S . -DCAROUSEL_SANITIZE=address
cmake --build build-asan -j --target net_test obs_test protocol_test \
  protocol_fuzz_test persistence_test meta_log_test cluster_test \
  repair_scheduler_test property_test
./build-asan/tests/net_test
./build-asan/tests/obs_test
./build-asan/tests/protocol_test
./build-asan/tests/protocol_fuzz_test
./build-asan/tests/persistence_test
./build-asan/tests/meta_log_test
./build-asan/tests/cluster_test
./build-asan/tests/repair_scheduler_test
./build-asan/tests/property_test

cmake -B build-tsan -S . -DCAROUSEL_SANITIZE=thread
cmake --build build-tsan -j --target net_test obs_test property_test \
  chaos_test
./build-tsan/tests/net_test
./build-tsan/tests/obs_test
./build-tsan/tests/property_test
CAROUSEL_CHAOS_SEED=20260805 CAROUSEL_CHAOS_EVENTS=60 \
  ./build-tsan/tests/chaos_test \
  --gtest_filter='Chaos.SeededFaultScheduleKeepsEveryInvariant'
./build-tsan/tests/chaos_test \
  --gtest_filter='Chaos.RackDownSurvivesWithZeroDataLoss'

cmake -B build-ubsan -S . -DCAROUSEL_SANITIZE=undefined
cmake --build build-ubsan -j
ctest --test-dir build-ubsan --output-on-failure -j 8

CAROUSEL_CHAOS_SEED=20260805 CAROUSEL_CHAOS_EVENTS=200 \
  ./build/tests/chaos_test --gtest_filter='Chaos.*'

cmake --build build -j --target bench_recovery_storm
(cd build/bench && \
  CAROUSEL_STORM_STRIPES=4 CAROUSEL_STORM_BLOCK_UNITS=4096 \
  CAROUSEL_STORM_P99_BUDGET_MS=500 CAROUSEL_STORM_DEADLINE_S=120 \
  ./bench_recovery_storm)

cmake --build build -j --target bench_tail_latency
(cd build/bench && \
  CAROUSEL_TAIL_STRIPES=2 CAROUSEL_TAIL_READS=100 \
  CAROUSEL_TAIL_STALL_MS=40 ./bench_tail_latency)

cmake --build build -j --target bench_meta_recovery
(cd build/bench && \
  CAROUSEL_META_FILES=100 CAROUSEL_META_MUTATIONS=1000 \
  CAROUSEL_META_BUDGET_S=10 ./bench_meta_recovery)

if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCAROUSEL_THREAD_SAFETY=ON -DCAROUSEL_WERROR=ON
  cmake --build build-tsa -j
  ./build-tsa/tests/sync_test
else
  echo "verify: clang++ not found; skipping the thread-safety analysis" \
       "build (CI's thread-safety job still runs it)"
fi

echo "verify: OK (suite + lint + ASan/TSan suites incl. rack-down chaos" \
     "+ full suite under UBSan + bounded chaos smoke + recovery-storm," \
     "rack-down, tail-latency and meta-recovery bench smokes +" \
     "thread-safety analysis when clang++ is present)"
