#!/usr/bin/env sh
# Tier-1 verification: full build + test suite, then the networked
# fault-tolerance tests again under AddressSanitizer (they exercise abrupt
# server death, connection churn and background scrubbing — exactly where
# lifetime bugs hide), and the net + observability tests under
# ThreadSanitizer (client counters, registry instruments and trace rings are
# all read while other threads mutate them).
#
#   sh tools/verify.sh
set -e
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j 8

cmake -B build-asan -S . -DCAROUSEL_SANITIZE=address
cmake --build build-asan -j --target net_test obs_test
./build-asan/tests/net_test
./build-asan/tests/obs_test

cmake -B build-tsan -S . -DCAROUSEL_SANITIZE=thread
cmake --build build-tsan -j --target net_test obs_test
./build-tsan/tests/net_test
./build-tsan/tests/obs_test

echo "verify: OK (full suite + net/obs tests under ASan and TSan)"
