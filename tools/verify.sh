#!/usr/bin/env sh
# Tier-1 verification: full build + test suite, then the networked
# fault-tolerance tests again under AddressSanitizer (they exercise abrupt
# server death, connection churn and background scrubbing — exactly where
# lifetime bugs hide).
#
#   sh tools/verify.sh
set -e
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j 8

cmake -B build-asan -S . -DCAROUSEL_SANITIZE=address
cmake --build build-asan -j --target net_test
./build-asan/tests/net_test

echo "verify: OK (full suite + net tests under ASan)"
