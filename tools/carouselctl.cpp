// carouselctl — encode, decode, repair and inspect Carousel-coded archives
// on the local filesystem.  See src/cli/cli.h for the archive format.

#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return carousel::cli::run(args);
}
